//! Synthetic instances for the simulation experiments (paper Section 5).
//!
//! "We selected n random values independently and uniformly at random from
//! a range. We experimented with various values for the parameters n, δn,
//! and δe; the last two, in particular, define the values of un(n) and
//! ue(n)." Two generators cover the two ways the paper uses this setup:
//!
//! * [`uniform_instance`] — plain i.i.d. uniform values; the realized
//!   `un(n)` is whatever the draw produced (report it with
//!   [`Instance::indistinguishable_from_max`]).
//! * [`planted_instance`] — values constructed so that the realized
//!   `un(n)`/`ue(n)` *equal* given targets, which is how the figures are
//!   labeled (`un(n) = 10, ue(n) = 5` etc.). The construction places
//!   `ue − 1` elements within `δe` of the maximum, `un − ue` more between
//!   `δe` and `δn`, and everything else far below.

use crowd_core::element::Instance;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// The value range used throughout the simulations.
pub const VALUE_RANGE: f64 = 1_000_000.0;

/// `n` values drawn i.i.d. uniform from `[0, range)`.
///
/// # Panics
///
/// Panics if `n == 0` or `range <= 0`.
pub fn uniform_instance<R: RngCore>(n: usize, range: f64, rng: &mut R) -> Instance {
    assert!(n > 0, "need at least one element");
    assert!(range > 0.0, "range must be positive");
    Instance::new((0..n).map(|_| rng.gen_range(0.0..range)).collect())
}

/// A planted instance together with the thresholds that realize its
/// `un(n)`/`ue(n)` targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantedInstance {
    /// The instance (element 0 is *not* necessarily the maximum — ids are
    /// shuffled).
    pub instance: Instance,
    /// The naïve threshold `δn` realizing `un(n)`.
    pub delta_n: f64,
    /// The expert threshold `δe` realizing `ue(n)`.
    pub delta_e: f64,
    /// The planted `un(n)` (elements within `δn` of the max, incl. the max).
    pub un: usize,
    /// The planted `ue(n)`.
    pub ue: usize,
}

/// Builds an instance with exact `un(n)` and `ue(n)`.
///
/// Layout (before shuffling), with `V = VALUE_RANGE`, `δn = V/100`,
/// `δe = δn/20`:
///
/// * the maximum at `V`;
/// * `ue − 1` elements in `(V − δe, V)` — expert-indistinguishable;
/// * `un − ue` elements in `(V − δn, V − 2δe)` — naïve- but not
///   expert-indistinguishable;
/// * `n − un` elements in `[0, V − 3δn)` — distinguishable by everyone,
///   uniformly spread (so their pairwise comparisons look like the paper's
///   uniform data).
///
/// # Panics
///
/// Panics unless `1 <= ue <= un <= n` and the far region can hold
/// `n − un` elements.
pub fn planted_instance<R: RngCore>(
    n: usize,
    un: usize,
    ue: usize,
    rng: &mut R,
) -> PlantedInstance {
    assert!(
        ue >= 1,
        "ue >= 1 (the maximum is indistinguishable from itself)"
    );
    assert!(
        ue <= un,
        "expert-indistinguishable implies naive-indistinguishable"
    );
    assert!(un <= n, "un cannot exceed n");

    let v = VALUE_RANGE;
    let delta_n = v / 100.0;
    let delta_e = delta_n / 20.0;

    let mut values = Vec::with_capacity(n);
    values.push(v);
    for _ in 1..ue {
        values.push(v - rng.gen_range(0.0..delta_e) * 0.999 - delta_e * 0.0005);
    }
    for _ in ue..un {
        // Strictly inside (V - δn, V - 2δe]: naive-indistinguishable from
        // the max but more than δe away from everything near the top.
        values.push(v - rng.gen_range(2.0 * delta_e..delta_n * 0.999));
    }
    for _ in un..n {
        values.push(rng.gen_range(0.0..(v - 3.0 * delta_n)));
    }

    // Shuffle so the maximum is not id 0.
    use rand::seq::SliceRandom;
    values.shuffle(rng);
    let instance = Instance::new(values);

    debug_assert_eq!(instance.indistinguishable_from_max(delta_n), un);
    debug_assert_eq!(instance.indistinguishable_from_max(delta_e), ue);

    PlantedInstance {
        instance,
        delta_n,
        delta_e,
        un,
        ue,
    }
}

/// The `(n, un, ue)` grid of the paper's Figures 3–7: `n` from 1000 to 5000
/// in steps of 1000, crossed with `(un, ue) ∈ {(10, 5), (50, 10)}`.
pub fn paper_parameter_grid() -> Vec<(usize, usize, usize)> {
    let mut grid = Vec::new();
    for &(un, ue) in &[(10usize, 5usize), (50, 10)] {
        for n in (1000..=5000).step_by(1000) {
            grid.push((n, un, ue));
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_values_lie_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = uniform_instance(500, 100.0, &mut rng);
        assert_eq!(inst.n(), 500);
        assert!(inst.values().iter().all(|&v| (0.0..100.0).contains(&v)));
    }

    #[test]
    fn planted_realizes_exact_targets() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(n, un, ue) in &[(1000, 10, 5), (2000, 50, 10), (100, 3, 1), (50, 5, 5)] {
            let p = planted_instance(n, un, ue, &mut rng);
            assert_eq!(p.instance.n(), n);
            assert_eq!(
                p.instance.indistinguishable_from_max(p.delta_n),
                un,
                "un for n={n}"
            );
            assert_eq!(
                p.instance.indistinguishable_from_max(p.delta_e),
                ue,
                "ue for n={n}"
            );
        }
    }

    #[test]
    fn planted_max_is_shuffled_away_from_id_zero_sometimes() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20)
            .filter(|_| {
                planted_instance(100, 5, 2, &mut rng)
                    .instance
                    .max_element()
                    .index()
                    == 0
            })
            .count();
        assert!(hits < 10, "the maximum should not be pinned at id 0");
    }

    #[test]
    fn planted_edge_cases() {
        let mut rng = StdRng::seed_from_u64(4);
        // un = ue = 1: the maximum alone in both neighbourhoods.
        let p = planted_instance(100, 1, 1, &mut rng);
        assert_eq!(p.instance.indistinguishable_from_max(p.delta_n), 1);
        // un = n: everything within δn (degenerate but legal).
        let p = planted_instance(10, 10, 2, &mut rng);
        assert_eq!(p.instance.indistinguishable_from_max(p.delta_n), 10);
    }

    #[test]
    fn paper_grid_covers_both_settings() {
        let grid = paper_parameter_grid();
        assert_eq!(grid.len(), 10);
        assert!(grid.contains(&(1000, 10, 5)));
        assert!(grid.contains(&(5000, 50, 10)));
    }

    #[test]
    #[should_panic(expected = "ue >= 1")]
    fn zero_ue_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        planted_instance(10, 5, 0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "implies naive-indistinguishable")]
    fn inverted_targets_panic() {
        let mut rng = StdRng::seed_from_u64(6);
        planted_instance(10, 2, 5, &mut rng);
    }
}
