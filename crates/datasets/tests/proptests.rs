//! Property-based tests of the dataset generators: the structural
//! constraints each generator promises must hold for every parameter
//! combination and seed.

use crowd_core::element::ElementId;
use crowd_core::model::{ErrorModel, WorkerClass};
use crowd_core::oracle::ComparisonOracle;
use crowd_datasets::adversarial::{descending_chain, lemma7_instance, AdversarialOracle};
use crowd_datasets::cars::{CarsCatalog, CarsWorkerModel};
use crowd_datasets::dots::{relative_difference, DotsDataset, DotsWorkerModel};
use crowd_datasets::search::SearchResultSet;
use crowd_datasets::synthetic::planted_instance;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Planted instances realize their un/ue targets exactly, for any
    /// admissible parameter combination.
    #[test]
    fn planted_targets_are_exact(n in 2usize..500, un_frac in 0.0f64..1.0, ue_frac in 0.0f64..1.0, seed in any::<u64>()) {
        let un = ((n as f64 * un_frac) as usize).clamp(1, n);
        let ue = ((un as f64 * ue_frac) as usize).clamp(1, un);
        let mut rng = StdRng::seed_from_u64(seed);
        let p = planted_instance(n, un, ue, &mut rng);
        prop_assert_eq!(p.instance.n(), n);
        prop_assert_eq!(p.instance.indistinguishable_from_max(p.delta_n), un);
        prop_assert_eq!(p.instance.indistinguishable_from_max(p.delta_e), ue);
        prop_assert!(p.delta_e <= p.delta_n);
    }

    /// The Lemma 7 gadget always has its defining geometry: element 0 is
    /// the maximum, exactly `un` elements are naive-indistinguishable from
    /// it, and all other elements are mutually indistinguishable.
    #[test]
    fn lemma7_geometry_holds(n in 2usize..120, un_frac in 0.0f64..1.0, delta in 0.1f64..50.0) {
        let un = ((n as f64 * un_frac) as usize).clamp(1, n);
        let inst = lemma7_instance(n, un, delta);
        prop_assert_eq!(inst.max_element(), ElementId(0));
        prop_assert_eq!(inst.indistinguishable_from_max(delta), un);
        for i in 1..n as u32 {
            for j in (i + 1)..n as u32 {
                prop_assert!(inst.distance(ElementId(i), ElementId(j)) <= delta);
            }
        }
    }

    /// Descending chains are strictly decreasing with uniform spacing.
    #[test]
    fn chains_are_uniform(n in 1usize..200, top in -100.0f64..100.0, spacing in 0.001f64..10.0) {
        let c = descending_chain(n, top, spacing);
        prop_assert_eq!(c.n(), n);
        prop_assert_eq!(c.max_element(), ElementId(0));
        for w in c.values().windows(2) {
            prop_assert!((w[0] - w[1] - spacing).abs() < 1e-9);
        }
    }

    /// Any generated CARS catalog satisfies the paper's constraints: price
    /// range, minimum gap, requested size.
    #[test]
    fn cars_constraints(count in 10usize..150, gap in 100.0f64..800.0, seed in any::<u64>()) {
        prop_assume!((count as f64 - 1.0) * gap <= 105_000.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let c = CarsCatalog::generate(count, gap, &mut rng);
        prop_assert_eq!(c.len(), count);
        for car in c.cars() {
            prop_assert!((14_000.0..=130_000.0).contains(&car.price));
        }
        for w in c.cars().windows(2) {
            prop_assert!(w[1].price - w[0].price >= gap - 1e-6);
        }
    }

    /// DOTS grids are exactly the arithmetic progressions requested, and
    /// the worker model's error is always a probability below 1/2.
    #[test]
    fn dots_grid_and_model(from in 10u32..500, extra in 1u32..1000, step in 1u32..50, r in 0.0f64..2.0) {
        let d = DotsDataset::grid(from, from + extra, step);
        prop_assert!(!d.is_empty());
        for (i, im) in d.images().iter().enumerate() {
            prop_assert_eq!(im.dots, from + i as u32 * step);
        }
        let m = DotsWorkerModel::calibrated();
        let p = m.error_probability(r);
        prop_assert!((0.0..0.5).contains(&p));
    }

    /// Relative difference is symmetric, in [0, 1] for same-sign values,
    /// and zero exactly on equal magnitudes.
    #[test]
    fn relative_difference_properties(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let r = relative_difference(a, b);
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert_eq!(r, relative_difference(b, a));
        if a == b {
            prop_assert_eq!(r, 0.0);
        }
    }

    /// Search result sets always plant one clear best, distinct top-100
    /// positions, and an expert-resolvable top (ue = 1).
    #[test]
    fn search_structure(count in 10usize..100, near in 1usize..9, seed in any::<u64>()) {
        prop_assume!(count > near);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = SearchResultSet::synthesize("q", count, near, &mut rng);
        let inst = s.to_instance();
        prop_assert_eq!(inst.max_value(), 100.0);
        prop_assert_eq!(inst.indistinguishable_from_max(s.expert_delta()), 1);
        prop_assert!(s.true_un() >= near.min(count));
        let mut positions: Vec<u32> = s.results().iter().map(|r| r.position).collect();
        positions.sort_unstable();
        let before = positions.len();
        positions.dedup();
        prop_assert_eq!(positions.len(), before);
    }

    /// The CARS worker model is deterministic above the threshold (with
    /// ε-free far answers) and closed (always returns one of the pair).
    #[test]
    fn cars_model_closure(v1 in 10_000.0f64..130_000.0, v2 in 10_000.0f64..130_000.0, seed in any::<u64>()) {
        prop_assume!(v1 != v2);
        let mut m = CarsWorkerModel::calibrated();
        let mut rng = StdRng::seed_from_u64(seed);
        let w = m.compare(ElementId(0), v1, ElementId(1), v2, &mut rng);
        prop_assert!(w == ElementId(0) || w == ElementId(1));
    }

    /// The adversarial oracle is truthful above its threshold and closed
    /// below it.
    #[test]
    fn adversarial_oracle_contract(n in 2usize..50, delta in 0.1f64..100.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1000.0)).collect();
        let inst = crowd_core::element::Instance::new(values);
        let mut o = AdversarialOracle::new(inst.clone(), delta);
        for i in 0..(n as u32).min(10) {
            for j in (i + 1)..(n as u32).min(10) {
                let (a, b) = (ElementId(i), ElementId(j));
                let w = o.compare(WorkerClass::Naive, a, b);
                prop_assert!(w == a || w == b);
                if inst.distance(a, b) > delta {
                    let truth = if inst.value(a) > inst.value(b) { a } else { b };
                    prop_assert_eq!(w, truth);
                }
            }
        }
    }
}
