//! Property-based tests of the platform substrate: scheduling invariants,
//! billing conservation, and quality-control behaviour under randomized
//! workloads and pool compositions.

use crowd_core::cost::CostModel;
use crowd_core::element::{ElementId, Instance};
use crowd_core::model::WorkerClass;
use crowd_core::oracle::ComparisonOracle;
use crowd_platform::{
    batched_filter, schedule, scheduler::distinct_workers_per_unit, Behavior, Job, Platform,
    PlatformConfig, PlatformOracle, SpamStrategy, TrustTracker, WorkerId, WorkerPool,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn pool_with(naive: usize, experts: usize) -> WorkerPool {
    let mut p = WorkerPool::new();
    p.hire_naive_crowd(naive, 5.0, 0.05);
    p.hire_expert_panel(experts, 0.5, 0.0);
    p
}

fn job_with(units: usize, judgments: u32) -> Job {
    let pairs: Vec<_> = (0..units)
        .map(|i| (ElementId(2 * i as u32), ElementId(2 * i as u32 + 1)))
        .collect();
    Job::from_pairs(&pairs, judgments)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every schedule covers exactly `units × judgments` assignments, never
    /// double-books a worker within a physical step, never assigns a worker
    /// twice to the same unit, and obeys the ⌈m/w⌉ physical-step rule.
    #[test]
    fn schedule_invariants(
        workers in 1usize..40,
        units in 1usize..30,
        judgments in 1u32..8,
        rotation in 0usize..100,
        start in 0u64..1000,
    ) {
        prop_assume!(judgments as usize <= workers);
        let pool = pool_with(workers, 0);
        let job = job_with(units, judgments);
        let s = schedule(&pool, &job, WorkerClass::Naive, &HashSet::new(), start, rotation).unwrap();

        prop_assert_eq!(s.assignments.len() as u64, job.total_judgments());
        prop_assert!(distinct_workers_per_unit(&s));
        let expected_steps = job.total_judgments().div_ceil(workers as u64);
        prop_assert_eq!(s.physical_steps, expected_steps);
        for step in 0..expected_steps {
            let mut at_step = HashSet::new();
            for a in s.assignments.iter().filter(|a| a.physical_step == start + step) {
                prop_assert!(at_step.insert(a.worker), "double-booked worker at step {}", step);
            }
        }
        prop_assert!(s.assignments.iter().all(|a| (start..start + expected_steps).contains(&a.physical_step)));
    }

    /// The rotation parameter is a pure relabeling: it changes who works,
    /// never how much work happens.
    #[test]
    fn rotation_preserves_workload(workers in 2usize..20, units in 1usize..20, r1 in 0usize..50, r2 in 0usize..50) {
        let pool = pool_with(workers, 0);
        let job = job_with(units, 1);
        let s1 = schedule(&pool, &job, WorkerClass::Naive, &HashSet::new(), 0, r1).unwrap();
        let s2 = schedule(&pool, &job, WorkerClass::Naive, &HashSet::new(), 0, r2).unwrap();
        prop_assert_eq!(s1.assignments.len(), s2.assignments.len());
        prop_assert_eq!(s1.physical_steps, s2.physical_steps);
    }

    /// Billing conservation: ledger total = naive judgments × cn + expert
    /// judgments × ce, and judgment counts match the oracle tally.
    #[test]
    fn billing_matches_judgments(
        n in 4usize..40,
        comparisons in 1usize..25,
        judgments_per_unit in 1u32..4,
        cn in 0.01f64..2.0,
        ce in 2.0f64..50.0,
        seed in any::<u64>(),
    ) {
        let instance = Instance::new((0..n).map(|i| i as f64 * 10.0).collect());
        let pool = pool_with(8, 4);
        let config = PlatformConfig::paper_default()
            .without_gold()
            .with_judgments_per_unit(judgments_per_unit)
            .with_payment(CostModel::new(cn, ce));
        let mut platform = Platform::new(instance.clone(), pool, config, StdRng::seed_from_u64(seed));
        let pairs: Vec<_> = (0..comparisons)
            .map(|i| {
                let a = (i % n) as u32;
                let b = ((i + 1 + i / n) % n) as u32;
                (ElementId(a), ElementId(if a == b { (b + 1) % n as u32 } else { b }))
            })
            .filter(|(a, b)| a != b)
            .collect();
        prop_assume!(!pairs.is_empty());
        platform.submit_comparisons(&pairs, WorkerClass::Naive).unwrap();
        platform.submit_comparisons(&pairs, WorkerClass::Expert).unwrap();

        let counts = platform.counts();
        let expected = counts.naive as f64 * cn + counts.expert as f64 * ce;
        prop_assert!((platform.ledger().total() - expected).abs() < 1e-6);
        prop_assert_eq!(platform.ledger().judgments(), counts.total());
    }

    /// The platform oracle always answers with one of the two compared
    /// elements, for both classes.
    #[test]
    fn platform_oracle_is_closed(n in 2usize..30, seed in any::<u64>(), a in 0u32..30, b in 0u32..30) {
        prop_assume!((a as usize) < n && (b as usize) < n && a != b);
        let instance = Instance::new((0..n).map(|i| i as f64).collect());
        let platform = Platform::new(
            instance,
            pool_with(6, 3),
            PlatformConfig::paper_default().without_gold(),
            StdRng::seed_from_u64(seed),
        );
        let mut oracle = PlatformOracle::new(platform);
        for class in [WorkerClass::Naive, WorkerClass::Expert] {
            let w = oracle.compare(class, ElementId(a), ElementId(b));
            prop_assert!(w == ElementId(a) || w == ElementId(b));
        }
    }

    /// Trust tracking: a worker's gold accuracy decides her fate exactly at
    /// the threshold, for any record.
    #[test]
    fn trust_threshold_is_exact(correct in 0u32..50, wrong in 0u32..50, threshold in 0.01f64..1.0, min_gold in 1u32..10) {
        let mut t = TrustTracker::new(threshold, min_gold);
        let w = WorkerId(0);
        for i in 0..(correct + wrong) {
            t.record(w, i < correct);
        }
        let seen = correct + wrong;
        let expected = seen < min_gold || correct as f64 / seen as f64 >= threshold;
        prop_assert_eq!(t.is_trusted(w), expected);
    }

    /// The batched filter and the sequential filter agree exactly when
    /// workers are deterministic, and batching never changes the
    /// comparison count — only the physical-step clock.
    #[test]
    fn batched_filter_equals_sequential(n in 8usize..150, un_frac in 0.0f64..0.3, workers in 2usize..30, seed in any::<u64>()) {
        use crowd_core::algorithms::{filter_candidates, FilterConfig};
        let un = ((n as f64 * un_frac) as usize).clamp(1, n / 2);
        let instance = Instance::new((0..n).map(|i| i as f64 * 3.0).collect());
        let build = || {
            let mut pool = WorkerPool::new();
            pool.hire_naive_crowd(workers, 0.0, 0.0); // perfect workers
            Platform::new(
                instance.clone(),
                pool,
                PlatformConfig::paper_default().without_gold(),
                StdRng::seed_from_u64(seed),
            )
        };

        let mut bp = build();
        let batched = batched_filter(&mut bp, WorkerClass::Naive, &instance.ids(), &FilterConfig::new(un)).unwrap();

        let mut oracle = PlatformOracle::new(build());
        let sequential = filter_candidates(&mut oracle, &instance.ids(), &FilterConfig::new(un));

        prop_assert_eq!(&batched.survivors, &sequential.survivors);
        let sp = oracle.into_platform();
        prop_assert_eq!(bp.counts().naive, sp.counts().naive);
        prop_assert!(batched.physical_steps <= sp.physical_clock());
    }

    /// Under arbitrary fault pressure, retry re-assignment never hands a
    /// unit back to a worker who already judged it — the
    /// distinct-workers-per-unit invariant survives recovery — and every
    /// performed judgment is billed.
    #[test]
    fn retry_reassignment_never_repeats_a_worker(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        abandon in 0.0f64..0.4,
        no_answer in 0.0f64..0.4,
        timeout_steps in 1u64..6,
        judgments in 1u32..3,
    ) {
        use crowd_platform::{FaultConfig, LatencyModel, RetryPolicy};
        use std::collections::HashMap;

        let instance = Instance::new((0..12).map(|i| i as f64 * 5.0).collect());
        let config = PlatformConfig::paper_default()
            .without_gold()
            .with_judgments_per_unit(judgments)
            .with_faults(
                FaultConfig::none()
                    .with_abandon(abandon)
                    .with_no_answer(no_answer)
                    .with_latency(LatencyModel::Geometric { p: 0.5, cap: 12 })
                    .with_timeout_steps(timeout_steps),
                fault_seed,
            )
            .with_retry(RetryPolicy::paper_default());
        let mut platform = Platform::new(
            instance,
            pool_with(10, 0),
            config,
            StdRng::seed_from_u64(seed),
        );
        for round in 0..8u32 {
            let job = Job::from_pairs(
                &[
                    (ElementId(round % 6), ElementId(6 + round % 6)),
                    (ElementId((round + 1) % 6), ElementId(11)),
                ],
                judgments,
            );
            if let Ok(result) = platform.run_job(&job, WorkerClass::Naive) {
                let mut seen: HashMap<_, HashSet<_>> = HashMap::new();
                for j in &result.judgments {
                    prop_assert!(
                        seen.entry(j.unit).or_default().insert(j.worker),
                        "unit {:?} judged twice by {} (round {round})",
                        j.unit,
                        j.worker
                    );
                }
            }
        }
        prop_assert_eq!(platform.ledger().judgments(), platform.counts().total());
    }

    /// A persistent spammer in a gold-rich platform eventually gets
    /// excluded, regardless of seed.
    #[test]
    fn spammers_eventually_excluded(seed in any::<u64>()) {
        let instance = Instance::new((0..20).map(|i| i as f64 * 100.0).collect());
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(5, 0.0, 0.0);
        let spammer = pool.hire(
            WorkerClass::Naive,
            "spam",
            Behavior::Spammer(SpamStrategy::AlwaysSecond),
        );
        let mut config = PlatformConfig::paper_default();
        config.gold_fraction = 0.5;
        config.min_gold = 2;
        let mut platform = Platform::new(instance, pool, config, StdRng::seed_from_u64(seed));
        // Gold pairs presented higher-first: AlwaysSecond always fails them.
        platform.set_gold_pairs(vec![
            (ElementId(19), ElementId(0)),
            (ElementId(18), ElementId(1)),
            (ElementId(17), ElementId(2)),
        ]);
        for _ in 0..120 {
            platform
                .submit_comparisons(&[(ElementId(5), ElementId(6))], WorkerClass::Naive)
                .unwrap();
            if !platform.trust().is_trusted(spammer) {
                break;
            }
        }
        prop_assert!(!platform.trust().is_trusted(spammer), "spammer survived 120 jobs");
    }
}
