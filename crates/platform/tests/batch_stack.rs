//! The batch contract through the full decorator stack: trace → obs →
//! fault → billing. Scalar and batch drives of the same layered oracle
//! must produce the identical judgment sequence and tallies, with the
//! billing layer's per-batch amortization (one platform job per batch)
//! visible only in the job structure — never in the answers.

use crowd_core::element::{ElementId, Instance};
use crowd_core::equiv::{assert_oracles_equal, drive_batched, drive_scalar};
use crowd_core::model::WorkerClass;
use crowd_core::oracle::{ComparisonOracle, FuseOracle};
use crowd_core::trace::InstrumentedOracle;
use crowd_obs::ObservedOracle;
use crowd_platform::{Platform, PlatformConfig, PlatformOracle, WorkerPool};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instance() -> Instance {
    Instance::new((0..12).map(|i| ((i * 53) % 12) as f64).collect())
}

/// The full stack over a fault-free platform with perfect workers and no
/// gold injection — the regime where scalar and batch drives are
/// observationally identical end to end.
fn full_stack(seed: u64) -> InstrumentedOracle<ObservedOracle<FuseOracle<PlatformOracle<StdRng>>>> {
    let mut pool = WorkerPool::new();
    pool.hire_naive_crowd(8, 0.0, 0.0);
    pool.hire_expert_panel(3, 0.0, 0.0);
    let config = PlatformConfig {
        gold_fraction: 0.0,
        ..PlatformConfig::paper_default()
    };
    let platform = Platform::new(instance(), pool, config, StdRng::seed_from_u64(seed));
    InstrumentedOracle::new(ObservedOracle::new(FuseOracle::new(PlatformOracle::new(
        platform,
    ))))
}

fn pairs() -> Vec<(ElementId, ElementId)> {
    let mut out = Vec::new();
    for a in 0..6u32 {
        for b in (a + 1)..6 {
            out.push((ElementId(a), ElementId(b)));
        }
    }
    out
}

#[test]
fn scalar_and_batch_drives_agree_through_the_full_stack() {
    for class in [WorkerClass::Naive, WorkerClass::Expert] {
        let (log, winners) = assert_oracles_equal(
            full_stack(17),
            full_stack(17),
            |o| drive_scalar(o, class, &pairs()),
            |o| drive_batched(o, class, &pairs(), &[4, 1, 7]),
        );
        assert_eq!(log.len(), pairs().len(), "class = {class}");
        // Perfect workers: every winner is the truly larger element.
        let inst = instance();
        for (&(k, j), &w) in pairs().iter().zip(&winners) {
            let best = if inst.value(k) >= inst.value(j) { k } else { j };
            assert_eq!(w, best, "class = {class}");
        }
    }
}

#[test]
fn the_billing_layer_amortizes_jobs_but_not_payments() {
    let run = |segments: &[usize]| {
        let mut stack = full_stack(5);
        let mut winners = Vec::new();
        let all = pairs();
        let mut rest: &[(ElementId, ElementId)] = &all;
        for &len in segments {
            let take = len.min(rest.len());
            let (batch, tail) = rest.split_at(take);
            stack.compare_batch(WorkerClass::Naive, batch, &mut winners);
            rest = tail;
        }
        if !rest.is_empty() {
            stack.compare_batch(WorkerClass::Naive, rest, &mut winners);
        }
        let platform = stack.into_inner().into_inner().into_inner().into_platform();
        (
            winners,
            platform.counts(),
            platform.ledger().total(),
            platform.ledger().judgments(),
            platform.logical_steps(),
        )
    };
    let scalar_shaped = run(&[1; 15]);
    let batched = run(&[15]);
    // Same answers, same tallies, same money and judgment count …
    assert_eq!(scalar_shaped.0, batched.0);
    assert_eq!(scalar_shaped.1, batched.1);
    assert_eq!(scalar_shaped.2, batched.2);
    assert_eq!(scalar_shaped.3, batched.3);
    // … but the batch ran as a single platform job (one logical step):
    // that is the budget-check/scheduling amortization.
    assert_eq!(scalar_shaped.4, 15);
    assert_eq!(batched.4, 1);
}

#[test]
fn a_budget_capped_batch_blows_the_fuse_as_a_unit() {
    let mut pool = WorkerPool::new();
    pool.hire_naive_crowd(8, 0.0, 0.0);
    pool.hire_expert_panel(3, 0.0, 0.0);
    let config = PlatformConfig {
        gold_fraction: 0.0,
        budget_cap: Some(5.0),
        ..PlatformConfig::paper_default()
    };
    let platform = Platform::new(instance(), pool, config, StdRng::seed_from_u64(2));
    let mut fuse = FuseOracle::new(PlatformOracle::new(platform));
    let mut winners = Vec::new();
    let all = pairs();
    // First batch fits the budget; the second is refused as a whole and
    // the fuse fabricates it consistently.
    fuse.compare_batch(WorkerClass::Naive, &all[..5], &mut winners);
    assert!(!fuse.blown());
    fuse.compare_batch(WorkerClass::Naive, &all[5..], &mut winners);
    assert!(fuse.blown());
    assert_eq!(winners.len(), all.len(), "the algorithm still terminates");
}
