//! Integration tests of the platform's observability instrumentation: the
//! events and metrics `run_job` feeds into `crowd-obs` recorders.

use crowd_core::element::{ElementId, Instance};
use crowd_core::model::WorkerClass;
use crowd_obs::{names, render_json, render_prometheus, Event, Recorder};
use crowd_platform::{
    FaultConfig, LatencyModel, Platform, PlatformConfig, RetryPolicy, WorkerPool,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn pool_with(naive: usize, experts: usize) -> WorkerPool {
    let mut p = WorkerPool::new();
    p.hire_naive_crowd(naive, 5.0, 0.05);
    p.hire_expert_panel(experts, 0.5, 0.0);
    p
}

fn pairs(n: usize, count: usize) -> Vec<(ElementId, ElementId)> {
    (0..count)
        .map(|i| {
            let a = (i % n) as u32;
            let b = ((i + 1) % n) as u32;
            (ElementId(a), ElementId(b))
        })
        .collect()
}

/// Runs the same small campaign under `config` with a recorder installed
/// and returns the (event log JSONL, Prometheus text, metrics JSON) it
/// produced.
fn run_recorded(config: PlatformConfig, seed: u64) -> (String, String, String) {
    let n = 12;
    let instance = Instance::new((0..n).map(|i| i as f64 * 3.0).collect());
    let rec = Arc::new(Recorder::new());
    {
        let _g = crowd_obs::install_recorder(rec.clone());
        let mut platform = Platform::new(
            instance,
            pool_with(8, 3),
            config,
            StdRng::seed_from_u64(seed),
        );
        platform
            .submit_comparisons(&pairs(n, 6), WorkerClass::Naive)
            .unwrap();
        platform
            .submit_comparisons(&pairs(n, 3), WorkerClass::Expert)
            .unwrap();
    }
    let snapshot = rec.metrics().snapshot();
    (
        rec.log().to_jsonl(),
        render_prometheus(&snapshot),
        render_json(&snapshot),
    )
}

/// A `FaultPlan` whose every rate is zero must be observationally
/// indistinguishable from the fault-free platform: same event log, byte
/// for byte, and the same metric expositions.
#[test]
fn zero_rate_fault_plan_is_byte_identical_to_fault_free() {
    let fault_free = PlatformConfig::paper_default().without_gold();
    let zero_rate = PlatformConfig::paper_default().without_gold().with_faults(
        FaultConfig::none()
            .with_dropout(0.0)
            .with_abandon(0.0)
            .with_no_answer(0.0)
            .with_latency(LatencyModel::Instant),
        0xDEAD_BEEF, // an armed plan with nothing to arm it with
    );
    let (log_a, prom_a, json_a) = run_recorded(fault_free, 7);
    let (log_b, prom_b, json_b) = run_recorded(zero_rate, 7);
    assert_eq!(log_a, log_b, "event logs must be byte-identical");
    assert_eq!(prom_a, prom_b, "metric expositions must be byte-identical");
    assert_eq!(json_a, json_b, "metric JSON twins must be byte-identical");
    // And neither log reports any fault.
    assert!(!log_a.contains("FaultObserved"), "{log_a}");
    assert!(!log_a.contains("RetryScheduled"), "{log_a}");
    assert!(!log_a.contains("DeadLettered"), "{log_a}");
}

/// Under an aggressive fault plan, the recorder's fault counter reconciles
/// exactly with the platform's own `FaultCounts` tally.
#[test]
fn fault_counter_reconciles_with_platform_tally() {
    let n = 12;
    let instance = Instance::new((0..n).map(|i| i as f64 * 3.0).collect());
    let config = PlatformConfig::paper_default().without_gold().with_faults(
        FaultConfig::none()
            .with_dropout(0.1)
            .with_abandon(0.15)
            .with_no_answer(0.2)
            .with_latency(LatencyModel::Geometric { p: 0.5, cap: 8 })
            .with_timeout_steps(3),
        99,
    );
    let rec = Arc::new(Recorder::new());
    let fault_total = {
        let _g = crowd_obs::install_recorder(rec.clone());
        let mut platform = Platform::new(
            instance,
            pool_with(10, 3),
            config,
            StdRng::seed_from_u64(21),
        );
        for round in 0..4 {
            let _ = platform.submit_comparisons(&pairs(n, 5 + round), WorkerClass::Naive);
        }
        platform.fault_counts().total()
    };
    assert!(fault_total > 0, "the plan must actually inject faults");
    let counter_total: u64 = rec
        .metrics()
        .snapshot()
        .iter()
        .filter(|s| s.name == names::FAULTS_TOTAL)
        .map(|s| match &s.value {
            crowd_obs::SampleValue::Counter { value } => *value,
            other => panic!("crowd_faults_total must be a counter, got {other:?}"),
        })
        .sum();
    assert_eq!(counter_total, fault_total);
    // Retries carry their attempt number and backoff; the generic fault
    // event never duplicates them.
    let log = rec.log();
    let retries = log
        .events()
        .filter(|e| matches!(e, Event::RetryScheduled { .. }))
        .count() as u64;
    let fault_observed_retries = log
        .events()
        .filter(|e| {
            matches!(
                e,
                Event::FaultObserved {
                    kind: crowd_core::trace::FaultKind::Retry,
                    ..
                }
            )
        })
        .count();
    assert_eq!(fault_observed_retries, 0);
    let tally = {
        // Re-derive the per-kind retry tally from the counter labels.
        rec.metrics()
            .snapshot()
            .iter()
            .filter(|s| s.name == names::FAULTS_TOTAL)
            .filter(|s| {
                s.labels
                    .iter()
                    .any(|l| l.name == "kind" && l.value == "retry")
            })
            .map(|s| match &s.value {
                crowd_obs::SampleValue::Counter { value } => *value,
                _ => 0,
            })
            .sum::<u64>()
    };
    assert_eq!(retries, tally);
}

/// Hitting the budget cap emits a `BudgetExhausted` event with the cap and
/// the spending that tripped it.
#[test]
fn budget_cap_emits_budget_exhausted() {
    let n = 12;
    let instance = Instance::new((0..n).map(|i| i as f64 * 3.0).collect());
    let config = PlatformConfig::paper_default()
        .without_gold()
        .with_budget_cap(0.5);
    let rec = Arc::new(Recorder::new());
    {
        let _g = crowd_obs::install_recorder(rec.clone());
        let mut platform =
            Platform::new(instance, pool_with(8, 3), config, StdRng::seed_from_u64(5));
        // First job spends past the cap; the second is refused.
        let _ = platform.submit_comparisons(&pairs(n, 8), WorkerClass::Naive);
        let refused = platform.submit_comparisons(&pairs(n, 2), WorkerClass::Naive);
        assert!(refused.is_err());
    }
    let log = rec.log();
    let exhausted: Vec<&Event> = log
        .events()
        .filter(|e| matches!(e, Event::BudgetExhausted { .. }))
        .collect();
    assert!(!exhausted.is_empty(), "BudgetExhausted event expected");
    if let Event::BudgetExhausted { cap, spent } = exhausted[0] {
        assert_eq!(*cap, 0.5);
        assert!(*spent >= 0.5);
    }
}

/// Usable judgments land in the per-class latency histogram; dead-lettered
/// units land in the dead-letter counter and event stream.
#[test]
fn latency_and_dead_letter_instrumentation() {
    let n = 12;
    let instance = Instance::new((0..n).map(|i| i as f64 * 3.0).collect());
    let config = PlatformConfig::paper_default()
        .without_gold()
        .with_faults(
            FaultConfig::none()
                .with_no_answer(0.5)
                .with_latency(LatencyModel::Geometric { p: 0.6, cap: 5 }),
            4242,
        )
        .with_retry(RetryPolicy::none());
    let rec = Arc::new(Recorder::new());
    {
        let _g = crowd_obs::install_recorder(rec.clone());
        let mut platform =
            Platform::new(instance, pool_with(8, 3), config, StdRng::seed_from_u64(17));
        let _ = platform.submit_comparisons(&pairs(n, 8), WorkerClass::Naive);
    }
    let snap = rec.metrics().snapshot();
    let latency = snap.iter().find(|s| s.name == names::LATENCY_STEPS);
    let dead = snap.iter().find(|s| s.name == names::DEAD_LETTERS_TOTAL);
    let dead_events = rec
        .log()
        .events()
        .filter(|e| matches!(e, Event::DeadLettered { .. }))
        .count();
    // With a 50% no-answer rate and no retries some units must die; the
    // ones that answered still record latencies.
    assert!(latency.is_some(), "latency histogram expected: {snap:?}");
    match dead {
        Some(sample) => {
            let crowd_obs::SampleValue::Counter { value } = sample.value else {
                panic!("dead-letter metric must be a counter");
            };
            assert_eq!(value as usize, dead_events);
            assert!(dead_events > 0);
        }
        None => assert_eq!(dead_events, 0),
    }
}
