//! Integration tests of the crowd-serve service layer: overload
//! shedding, determinism, correct-or-degraded completion, breaker
//! behaviour, admission accounting, and chaos kill + resume.

use crowd_core::element::ElementId;
use crowd_core::model::WorkerClass;
use crowd_obs::{install_recorder, Event, Recorder, RecorderGuard};
use crowd_platform::fault::{FaultConfig, LatencyModel};
use crowd_platform::serve::{
    Admission, ArrivalPlan, BreakerPolicy, CachePolicy, CrowdServe, JobSpec, ServeConfig,
    ServeError, ServeKill, ServeReport, ShardSpec, TenantId, TenantPolicy,
};
use proptest::prelude::*;
use std::sync::Arc;

fn record() -> (Arc<Recorder>, RecorderGuard) {
    let rec = Arc::new(Recorder::new());
    let guard = install_recorder(rec.clone());
    (rec, guard)
}

/// Two tenants, modest pools, mild faults — the workhorse config.
fn faulty_config() -> ServeConfig {
    ServeConfig::basic()
        .with_tenants(vec![
            TenantPolicy::new(TenantId(0), 400, 8),
            TenantPolicy::new(TenantId(1), 200, 4),
        ])
        .with_shards(vec![
            ShardSpec::honest(WorkerClass::Naive, 12, 36).with_fault(
                FaultConfig::none()
                    .with_no_answer(0.10)
                    .with_abandon(0.05)
                    .with_latency(LatencyModel::Geometric { p: 0.7, cap: 6 })
                    .with_timeout_steps(4),
            ),
            ShardSpec::honest(WorkerClass::Naive, 12, 36),
            ShardSpec::honest(WorkerClass::Expert, 4, 12),
        ])
        .with_queue_cap(4)
}

fn overload_plan(seed: u64) -> ArrivalPlan {
    // Far more jobs per tick than the shard windows can absorb.
    ArrivalPlan::new(seed, 3, 1, 60, 2)
        .with_catalog(4, 9)
        .with_deadline(40)
}

fn true_argmax(spec: &JobSpec) -> ElementId {
    let mut best = 0usize;
    for (i, v) in spec.values.iter().enumerate() {
        if *v > spec.values[best] {
            best = i;
        }
    }
    ElementId(best as u32)
}

#[test]
fn overload_sheds_terminates_and_stays_correct_or_degraded() {
    let (_rec, _g) = record();
    let plan = overload_plan(11);
    let mut service = CrowdServe::new(faulty_config(), 7).unwrap();
    let report = service.run(&plan, 600).expect("overload must not crash");

    let offered: u64 = report.tenants.iter().map(|t| t.offered).sum();
    let completed = report.jobs.len() as u64;
    assert_eq!(offered, 60, "every arrival was offered");
    assert!(report.shed > 0, "2x-plus overload must shed");
    assert_eq!(
        completed + report.shed,
        offered,
        "every offered job either completed or was shed — nothing hangs"
    );
    // Correct-or-degraded: a non-degraded completion is the true max.
    for job in &report.jobs {
        let spec = plan.spec(job.job.0);
        assert_eq!(spec.tenant, job.tenant);
        if job.degraded.is_none() {
            assert_eq!(
                job.winner,
                true_argmax(&spec),
                "non-degraded job {} must return the true max",
                job.job
            );
        }
    }
    assert!(
        report.jobs.iter().any(|j| j.degraded.is_none()),
        "some jobs should still complete cleanly"
    );
}

#[test]
fn runs_are_deterministic_per_seed() {
    let run = |seed: u64| -> (ServeReport, Vec<u8>) {
        let (_rec, _g) = record();
        let mut service = CrowdServe::new(faulty_config(), seed).unwrap();
        let report = service.run(&overload_plan(3), 600).unwrap();
        (report, service.journal().durable().to_vec())
    };
    let (ra, ja) = run(5);
    let (rb, jb) = run(5);
    let (rc, jc) = run(6);
    assert_eq!(ra, rb, "same seed: same report");
    assert_eq!(ja, jb, "same seed: byte-identical journal");
    assert!(rc != ra || jc != ja, "different seed must differ");
}

#[test]
fn zero_fault_run_with_breakers_matches_run_without() {
    // Satellite: a zero-rate fault plan never trips a breaker, so the
    // breaker layer enabled is byte-identical to the layer disabled.
    let clean = ServeConfig::basic().with_tenants(vec![
        TenantPolicy::new(TenantId(0), 50_000, 500),
        TenantPolicy::new(TenantId(1), 50_000, 500),
    ]);
    let run = |config: ServeConfig| -> (ServeReport, Vec<u8>, Vec<Event>) {
        let (rec, _g) = record();
        let mut service = CrowdServe::new(config, 9).unwrap();
        let report = service.run(&overload_plan(4), 600).unwrap();
        (report, service.journal().durable().to_vec(), rec.events())
    };
    let (on_report, on_journal, on_events) =
        run(clean.clone().with_breaker(BreakerPolicy::default_on()));
    let (off_report, off_journal, off_events) = run(clean.with_breaker(BreakerPolicy::disabled()));
    assert_eq!(on_report.breaker_trips, 0, "no faults, no trips");
    assert_eq!(on_report, off_report);
    // The `Started` header frame embeds the config digest, which covers
    // the breaker policy; everything after it must be byte-identical.
    let body = |journal: &[u8]| -> Vec<u8> {
        let header_end = journal.iter().position(|b| *b == b'\n').unwrap() + 1;
        journal[header_end..].to_vec()
    };
    assert_eq!(
        body(&on_journal),
        body(&off_journal),
        "breaker layer must be invisible"
    );
    assert_eq!(on_events, off_events);
}

#[test]
fn quarantine_storm_degrades_instead_of_hanging() {
    // Every naive judgment faults: breakers trip across the board, pairs
    // dead-letter or wait, deadlines finish every job — no hang.
    let (_rec, _g) = record();
    let config = ServeConfig::basic()
        .with_tenants(vec![TenantPolicy::new(TenantId(0), 50_000, 500)])
        .with_shards(vec![
            ShardSpec::honest(WorkerClass::Naive, 6, 24)
                .with_fault(FaultConfig::none().with_no_answer(1.0)),
            ShardSpec::honest(WorkerClass::Expert, 2, 8),
        ]);
    let plan = ArrivalPlan::new(2, 1, 2, 8, 1).with_deadline(12);
    let mut service = CrowdServe::new(config, 3).unwrap();
    let report = service.run(&plan, 400).expect("storm must not crash");
    let completed: u64 = report.jobs.len() as u64;
    assert_eq!(completed + report.shed, 8, "all offered jobs resolved");
    assert!(report.breaker_trips > 0, "the storm must trip breakers");
    assert!(
        report.jobs.iter().all(|j| j.degraded.is_some()),
        "nothing can complete cleanly when every crowd judgment faults"
    );
}

#[test]
fn expert_outage_falls_back_to_boosted_crowd() {
    let (rec, _g) = record();
    let config = ServeConfig::basic()
        .with_tenants(vec![TenantPolicy::new(TenantId(0), 50_000, 500)])
        .with_shards(vec![
            ShardSpec::honest(WorkerClass::Naive, 12, 48),
            // The whole expert shard drops out before judging anything.
            ShardSpec::honest(WorkerClass::Expert, 3, 12)
                .with_fault(FaultConfig::none().with_dropout(1.0)),
        ]);
    let plan = ArrivalPlan::new(5, 1, 2, 6, 1).with_catalog(5, 8);
    let mut service = CrowdServe::new(config, 1).unwrap();
    let report = service.run(&plan, 400).unwrap();
    assert!(!report.jobs.is_empty());
    for job in &report.jobs {
        assert_eq!(
            job.degraded,
            Some(crowd_core::trace::DegradedReason::ExpertExhausted),
            "every job needed the expert phase and had to fall back"
        );
        // Honest crowd with boosted votes still finds the max.
        assert_eq!(job.winner, true_argmax(&plan.spec(job.job.0)));
    }
    assert!(rec.events().iter().any(|e| matches!(
        e,
        Event::FaultObserved {
            kind: crowd_core::trace::FaultKind::ExpertFallback,
            ..
        }
    )));
}

#[test]
fn under_reservation_finishes_jobs_budget_exhausted() {
    let (_rec, _g) = record();
    let config = ServeConfig::basic()
        .with_tenants(vec![TenantPolicy::new(TenantId(0), 50_000, 500)])
        .with_reserve_factor_percent(5);
    let plan = ArrivalPlan::new(8, 1, 2, 6, 1).with_catalog(10, 14);
    let mut service = CrowdServe::new(config, 2).unwrap();
    let report = service.run(&plan, 400).unwrap();
    assert_eq!(report.jobs.len() as u64 + report.shed, 6);
    assert!(
        report
            .jobs
            .iter()
            .any(|j| j.degraded == Some(crowd_core::trace::DegradedReason::BudgetExhausted)),
        "a 5% reservation cannot fund a 10+-element tournament"
    );
}

#[test]
fn shed_submissions_leave_no_residue() {
    let (rec, _g) = record();
    // Queue of zero and a bucket too small for any job: everything sheds.
    let config = ServeConfig::basic()
        .with_tenants(vec![TenantPolicy::new(TenantId(0), 10, 0)])
        .with_queue_cap(0);
    let mut service = CrowdServe::new(config, 4).unwrap();
    let header_len = service.journal().durable().len();
    let spec = JobSpec {
        tenant: TenantId(0),
        values: vec![1.0, 2.0, 3.0, 4.0],
        votes: 3,
        expert_votes: 3,
        deadline_ticks: 16,
    };
    for _ in 0..5 {
        match service.submit(spec.clone()).unwrap() {
            Admission::Rejected { retry_after, .. } => {
                assert_eq!(retry_after, u64::MAX, "this job can never fit the bucket");
            }
            other => panic!("expected a shed, got {other:?}"),
        }
    }
    for _ in 0..3 {
        service.step().unwrap();
    }
    let report = service.report();
    assert_eq!(service.journal().durable().len(), header_len);
    assert_eq!(service.journal().pending_len(), 0, "no journal residue");
    assert_eq!(report.tenants[0].shed, 5);
    assert_eq!(report.tenants[0].tokens_granted, 0, "no bucket movement");
    assert_eq!(report.comparisons, 0);
    let shed_events = rec
        .events()
        .iter()
        .filter(|e| matches!(e, Event::JobShed { .. }))
        .count();
    assert_eq!(shed_events, 5, "shed leaves only its event");
}

/// Runs `plan` uninterrupted and returns report + journal + events.
fn uninterrupted(
    config: &ServeConfig,
    seed: u64,
    plan: &ArrivalPlan,
) -> (ServeReport, Vec<u8>, Vec<Event>) {
    let (rec, _g) = record();
    let mut service = CrowdServe::new(config.clone(), seed).unwrap();
    let report = service.run(plan, 600).unwrap();
    (report, service.journal().durable().to_vec(), rec.events())
}

fn is_recovery_marker(event: &Event) -> bool {
    matches!(
        event,
        Event::RecoveryStarted { .. } | Event::RecoveryCompleted { .. }
    )
}

#[test]
fn kill_and_resume_matches_uninterrupted_run() {
    let config = faulty_config();
    let plan = overload_plan(13);
    let (base_report, base_journal, base_events) = uninterrupted(&config, 21, &plan);
    assert!(!base_report.jobs.is_empty());

    for kill in [
        ServeKill::BeforeTick(6),
        ServeKill::MidTick(9),
        ServeKill::TornCompleted(11),
    ] {
        // Doom a run, keeping only its durable journal bytes.
        let durable = {
            let (_rec, _g) = record();
            let mut doomed = CrowdServe::new(config.clone(), 21)
                .unwrap()
                .with_chaos(kill);
            let err = doomed.run(&plan, 600).expect_err("the kill must fire");
            assert_eq!(err, ServeError::Crashed);
            assert!(doomed.crashed());
            doomed.journal().durable().to_vec()
        };
        assert!(durable.len() < base_journal.len(), "{kill:?} lost work");

        // Resume from the wreckage.
        let (rec, _g) = record();
        let (report, resumed) =
            CrowdServe::resume(config.clone(), 21, &plan, &durable, 600).unwrap();
        assert_eq!(report, base_report, "{kill:?}: reports must match");
        assert_eq!(
            resumed.journal().durable(),
            &base_journal[..],
            "{kill:?}: resumed journal must be byte-identical"
        );
        let events = rec.events();
        assert!(events.iter().any(is_recovery_marker));
        let filtered: Vec<&Event> = events.iter().filter(|e| !is_recovery_marker(e)).collect();
        let base: Vec<&Event> = base_events.iter().collect();
        assert_eq!(filtered, base, "{kill:?}: event stream must match");
        // Per-tenant accounting is identical by construction of the
        // report equality above, but make the acceptance bar explicit.
        for (a, b) in report.tenants.iter().zip(base_report.tenants.iter()) {
            assert_eq!(a, b, "{kill:?}: per-tenant accounting must match");
        }
    }
}

#[test]
fn resume_refuses_foreign_journals() {
    let config = faulty_config();
    let plan = overload_plan(13);
    let (_rec, _g) = record();
    let mut service = CrowdServe::new(config.clone(), 21)
        .unwrap()
        .with_chaos(ServeKill::BeforeTick(4));
    let _ = service.run(&plan, 600);
    let bytes = service.journal().durable().to_vec();

    // Wrong seed.
    let err = CrowdServe::resume(config.clone(), 22, &plan, &bytes, 600).unwrap_err();
    assert!(matches!(
        err,
        ServeError::Resume(crowd_platform::serve::ResumeError::SeedMismatch { .. })
    ));
    // Wrong config.
    let other = config.clone().with_queue_cap(99);
    let err = CrowdServe::resume(other, 21, &plan, &bytes, 600).unwrap_err();
    assert!(matches!(
        err,
        ServeError::Resume(crowd_platform::serve::ResumeError::ConfigMismatch)
    ));
    // No header at all.
    let err = CrowdServe::resume(config, 21, &plan, b"", 600).unwrap_err();
    assert!(matches!(
        err,
        ServeError::Resume(crowd_platform::serve::ResumeError::MissingHeader)
    ));
}

#[test]
fn submission_errors_are_typed() {
    let (_rec, _g) = record();
    let mut service = CrowdServe::new(ServeConfig::basic(), 0).unwrap();
    let bad_tenant = JobSpec {
        tenant: TenantId(42),
        values: vec![1.0, 2.0],
        votes: 1,
        expert_votes: 1,
        deadline_ticks: 8,
    };
    assert_eq!(
        service.submit(bad_tenant).unwrap_err(),
        ServeError::UnknownTenant(TenantId(42))
    );
    let empty = JobSpec {
        tenant: TenantId(0),
        values: vec![],
        votes: 1,
        expert_votes: 1,
        deadline_ticks: 8,
    };
    assert_eq!(service.submit(empty).unwrap_err(), ServeError::EmptyCatalog);
    assert!(matches!(
        CrowdServe::new(ServeConfig::basic().with_shards(vec![]), 0),
        Err(ServeError::NoShards)
    ));
    let dup = ServeConfig::basic().with_tenants(vec![
        TenantPolicy::new(TenantId(3), 10, 1),
        TenantPolicy::new(TenantId(3), 10, 1),
    ]);
    assert!(matches!(
        CrowdServe::new(dup, 0),
        Err(ServeError::DuplicateTenant(TenantId(3)))
    ));
}

/// Fault-free honest config with a generous single-tenant budget: every
/// submission admits, every distinguishable pair is judged correctly.
fn cache_test_config(cache: CachePolicy) -> ServeConfig {
    ServeConfig::basic()
        .with_tenants(vec![TenantPolicy::new(TenantId(0), 100_000, 200)])
        .with_shards(vec![
            ShardSpec::honest(WorkerClass::Naive, 12, 36),
            ShardSpec::honest(WorkerClass::Expert, 4, 12),
        ])
        .with_queue_cap(16)
        .with_cache(cache)
}

/// Submits `specs` (each `gap` ticks after the previous) and steps the
/// service until everything completes; returns the final report plus
/// the cache hit count.
fn run_specs(specs: &[JobSpec], gap: u64, cache: CachePolicy, seed: u64) -> (ServeReport, u64) {
    let (_rec, _g) = record();
    let mut service = CrowdServe::new(cache_test_config(cache), seed).expect("config is valid");
    let mut pending = specs.iter().cloned();
    let mut next_submit = 0u64;
    let mut queued = pending.next();
    for _ in 0..2_000u64 {
        while queued.is_some() && service.tick() >= next_submit {
            let spec = queued.take().expect("checked is_some");
            if let Admission::Rejected { .. } =
                service.submit(spec).expect("submission is well-formed")
            {
                panic!("generous budget must admit");
            }
            next_submit = service.tick() + gap;
            queued = pending.next();
        }
        service.step().expect("no chaos: cannot crash");
        if queued.is_none() && service.report().jobs.len() == specs.len() {
            break;
        }
    }
    let report = service.report();
    assert_eq!(report.jobs.len(), specs.len(), "all jobs must complete");
    let hits = report.cache_hits;
    (report, hits)
}

/// Disjoint catalogs leave the cache without a single hit, and the run's
/// report is identical to a cache-off run's — the cache is invisible
/// until catalogs actually overlap.
#[test]
fn cache_is_invisible_without_overlap() {
    let a = JobSpec {
        tenant: TenantId(0),
        values: vec![10.0, 30.0, 20.0, 5.0],
        votes: 3,
        expert_votes: 3,
        deadline_ticks: 64,
    };
    let mut b = a.clone();
    b.values = vec![11.0, 31.0, 21.0, 6.0];
    let specs = [a, b];
    let (on, hits) = run_specs(&specs, 1, CachePolicy::default_on(), 77);
    let (off, _) = run_specs(&specs, 1, CachePolicy::disabled(), 77);
    assert_eq!(hits, 0, "disjoint catalogs cannot hit");
    assert_eq!(on, off, "the cache must be invisible without overlap");
}

/// Two identical catalogs: the second job's naive tournament is answered
/// entirely from the cache, hits are accounted, and nothing is charged
/// for them.
#[test]
fn identical_catalogs_reuse_judgments_and_are_never_charged_for_hits() {
    let spec = JobSpec {
        tenant: TenantId(0),
        values: vec![10.0, 40.0, 20.0, 30.0, 5.0],
        votes: 3,
        expert_votes: 3,
        deadline_ticks: 64,
    };
    let solo = [spec.clone()];
    let twice = [spec.clone(), spec];
    let (solo_report, _) = run_specs(&solo, 1, CachePolicy::default_on(), 91);
    let (pair_report, hits) = run_specs(&twice, 1, CachePolicy::default_on(), 91);
    assert!(hits > 0, "an identical catalog must hit: {pair_report:?}");
    assert!(
        pair_report.comparisons < 2 * solo_report.comparisons,
        "reuse must cost less than two isolated runs: {} vs 2×{}",
        pair_report.comparisons,
        solo_report.comparisons
    );
    assert_eq!(
        pair_report.cache_saved_comparisons,
        2 * solo_report.comparisons - pair_report.comparisons,
        "every comparison not charged is accounted as saved"
    );
    for job in &pair_report.jobs {
        assert_eq!(job.winner, ElementId(1), "winner is the true max");
        assert_eq!(job.degraded, None);
    }
    // Ledger invariant holds with hits in play: hits are never charged,
    // so charged + refunded still never exceeds granted.
    for tenant in &pair_report.tenants {
        assert!(tenant.comparisons + tenant.tokens_refunded <= tenant.tokens_granted);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cross-job reuse never costs extra and never changes an answer:
    /// for any interleaving of two jobs over overlapping catalogs, the
    /// combined run's total comparisons stay at or below the sum of two
    /// isolated runs, and each job's winner is unchanged.
    #[test]
    fn overlapping_jobs_cost_at_most_the_sum_of_isolated_runs(
        seed in 0u64..500,
        a_len in 2usize..8,
        b_len in 2usize..8,
        b_start in 0usize..8,
        gap in 0u64..6,
        b_first in 0usize..2,
    ) {
        let b_first = b_first == 1;
        // Distinct universe values, bit-identical wherever both
        // catalogs draw the same item — that is what "overlapping
        // catalogs" means to a content-keyed cache.
        let universe: Vec<f64> = (0..16)
            .map(|i| (i as f64) * 9.0 + ((seed % 7) as f64) / 8.0)
            .collect();
        let mk = |start: usize, len: usize| JobSpec {
            tenant: TenantId(0),
            values: universe[start..start + len].to_vec(),
            votes: 3,
            expert_votes: 3,
            deadline_ticks: 64,
        };
        let a = mk(0, a_len);
        let b = mk(b_start, b_len);
        let combined = if b_first {
            [b.clone(), a.clone()]
        } else {
            [a.clone(), b.clone()]
        };

        let (a_iso, _) = run_specs(std::slice::from_ref(&a), 0, CachePolicy::default_on(), seed);
        let (b_iso, _) = run_specs(std::slice::from_ref(&b), 0, CachePolicy::default_on(), seed);
        let (both, _) = run_specs(&combined, gap, CachePolicy::default_on(), seed);

        prop_assert!(
            both.comparisons <= a_iso.comparisons + b_iso.comparisons,
            "interleaved total {} > isolated sum {} + {}",
            both.comparisons, a_iso.comparisons, b_iso.comparisons
        );
        // Winners unchanged: each job still returns its catalog's true
        // maximum, exactly as the isolated runs did.
        prop_assert_eq!(a_iso.jobs[0].winner, true_argmax(&a));
        prop_assert_eq!(b_iso.jobs[0].winner, true_argmax(&b));
        // Job ids are assigned in submission order, so the smaller id
        // belongs to the spec submitted first.
        let first_id = both.jobs.iter().map(|j| j.job.0).min().expect("two jobs completed");
        for job in &both.jobs {
            let spec = if job.job.0 == first_id { &combined[0] } else { &combined[1] };
            prop_assert_eq!(
                job.winner,
                true_argmax(spec),
                "job {:?} winner changed under interleaving", job.job
            );
        }
    }

    /// Admission accounting: for every tenant, comparisons charged never
    /// exceed the tokens its bucket dispensed, and the bucket can never
    /// dispense more than its initial fill plus its refill inflow.
    #[test]
    fn charges_never_exceed_the_token_budget(
        seed in 0u64..1000,
        capacity in 50u64..3000,
        refill in 0u64..60,
        rate_num in 1u64..4,
        jobs in 1u64..30,
    ) {
        let (_rec, _g) = record();
        let config = ServeConfig::basic().with_tenants(vec![
            TenantPolicy::new(TenantId(0), capacity, refill),
            TenantPolicy::new(TenantId(1), capacity / 2 + 1, refill / 2),
        ]);
        let plan = ArrivalPlan::new(seed, rate_num, 1, jobs, 2)
            .with_catalog(2, 8)
            .with_deadline(30);
        let mut service = CrowdServe::new(config, seed ^ 0xABCD).unwrap();
        let report = service.run(&plan, 500).expect("never crashes");
        for tenant in &report.tenants {
            let policy_cap = if tenant.tenant == TenantId(0) { capacity } else { capacity / 2 + 1 };
            let policy_refill = if tenant.tenant == TenantId(0) { refill } else { refill / 2 };
            prop_assert!(
                tenant.comparisons + tenant.tokens_refunded <= tenant.tokens_granted,
                "tenant {} charged {} + refunded {} > granted {}",
                tenant.tenant, tenant.comparisons, tenant.tokens_refunded, tenant.tokens_granted
            );
            // Refunded tokens return to the bucket and may legitimately
            // be granted again, so they count as inflow too.
            let inflow = policy_cap + policy_refill * report.ticks + tenant.tokens_refunded;
            prop_assert!(
                tenant.tokens_granted <= inflow,
                "tenant {} granted {} > inflow {}",
                tenant.tenant, tenant.tokens_granted, inflow
            );
        }
    }

    /// Load shedding is residue-free: a shed submission changes neither
    /// the journal nor the tenant's bucket ledger.
    #[test]
    fn shedding_is_residue_free(
        seed in 0u64..1000,
        capacity in 10u64..200,
        queue_cap in 0usize..3,
        n in 2u32..12,
    ) {
        let (_rec, _g) = record();
        let config = ServeConfig::basic()
            .with_tenants(vec![TenantPolicy::new(TenantId(0), capacity, 1)])
            .with_queue_cap(queue_cap);
        let mut service = CrowdServe::new(config, seed).unwrap();
        let plan = ArrivalPlan::new(seed, 1, 1, 40, 1).with_catalog(n, n);
        let mut saw_shed = false;
        for idx in 0..40 {
            let before_journal =
                (service.journal().durable().len(), service.journal().pending_len());
            let before = service.report();
            let admission = service.submit(plan.spec(idx)).unwrap();
            if let Admission::Rejected { .. } = admission {
                saw_shed = true;
                let after = service.report();
                let after_journal =
                    (service.journal().durable().len(), service.journal().pending_len());
                prop_assert_eq!(before_journal, after_journal, "journal residue");
                prop_assert_eq!(
                    before.tenants[0].tokens_granted,
                    after.tenants[0].tokens_granted
                );
                prop_assert_eq!(
                    before.tenants[0].tokens_refunded,
                    after.tenants[0].tokens_refunded
                );
                prop_assert_eq!(before.jobs.len(), after.jobs.len());
            }
        }
        prop_assume!(saw_shed);
    }

    /// Breaker state machine: deterministic under a fixed seed, and the
    /// trip threshold is exact — `threshold − 1` consecutive failures
    /// leave it closed, one more opens it.
    #[test]
    fn breaker_trips_exactly_at_threshold(
        threshold in 1u32..8,
        seed in 0u64..1000,
        worker in 0u64..64,
    ) {
        use crowd_platform::serve::CircuitBreaker;
        let policy = BreakerPolicy::default_on().with_trip_threshold(threshold);
        let mut a = CircuitBreaker::new();
        let mut b = CircuitBreaker::new();
        for i in 0..threshold - 1 {
            let va = a.on_failure(0, &policy, seed, worker);
            let vb = b.on_failure(0, &policy, seed, worker);
            prop_assert_eq!(va, vb, "replay diverged at failure {}", i);
            prop_assert!(va.tripped.is_none(), "tripped below threshold");
            prop_assert!(a.admits(0));
        }
        let va = a.on_failure(0, &policy, seed, worker);
        let vb = b.on_failure(0, &policy, seed, worker);
        prop_assert_eq!(va, vb);
        prop_assert!(va.tripped.is_some(), "threshold reached, no trip");
        prop_assert!(!a.admits(0), "open breaker admits nothing at trip tick");
        prop_assert_eq!(a.state(), b.state(), "state replay diverged");
    }

    /// A breaker's open/probe cycle is deterministic: the same seeded
    /// failure schedule replays to the same trips and cooldowns.
    #[test]
    fn breaker_cycles_replay_deterministically(
        seed in 0u64..1000,
        worker in 0u64..64,
        script in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        use crowd_platform::serve::CircuitBreaker;
        let policy = BreakerPolicy::default_on()
            .with_trip_threshold(2)
            .with_cooldown(2, 3);
        let run = |script: &[bool]| {
            let mut b = CircuitBreaker::new();
            let mut states = Vec::new();
            for (tick, ok) in script.iter().enumerate() {
                let tick = tick as u64;
                if b.admits(tick) {
                    if *ok {
                        b.on_success();
                    } else {
                        b.on_failure(tick, &policy, seed, worker);
                    }
                }
                states.push((b.state(), b.trips()));
            }
            states
        };
        prop_assert_eq!(run(&script), run(&script));
    }
}

/// The span-accounting invariant (the `serve_trace` contract): for every
/// completed job — degraded, queued, and cache-hit jobs included — the
/// stage-span ticks sum to exactly `latency_ticks()`, and the span log
/// reconciles as a whole.
#[test]
fn stage_spans_partition_every_completed_jobs_latency() {
    use crowd_obs::Stage;
    use std::collections::BTreeMap;

    let (rec, _g) = record();
    // Overlapping catalogs force judgment-cache hits; the faulty config
    // forces retries and queueing; the tight deadline forces degraded
    // completions even for jobs the cache accelerates.
    let plan = overload_plan(11).with_overlap(60, 6).with_deadline(3);
    let mut service = CrowdServe::new(faulty_config(), 7).unwrap();
    let report = service.run(&plan, 600).expect("run completes");

    let log = rec.span_log();
    log.reconcile().expect("span log reconciles");

    // Cross-check against the report: one Admission/Completion marker
    // pair per completed job, stage ticks summing to latency_ticks().
    let mut sums: BTreeMap<u64, u64> = BTreeMap::new();
    let mut markers: BTreeMap<u64, u64> = BTreeMap::new();
    for span in &log.spans {
        match span.stage {
            Stage::Admission | Stage::Completion => {
                *markers.entry(span.job).or_insert(0) += 1;
            }
            _ => *sums.entry(span.job).or_insert(0) += span.ticks,
        }
    }
    assert!(!report.jobs.is_empty());
    for job in &report.jobs {
        assert_eq!(
            markers.get(&job.job.0),
            Some(&2),
            "job {} must carry both markers",
            job.job
        );
        assert_eq!(
            sums.get(&job.job.0).copied().unwrap_or(0),
            job.latency_ticks(),
            "job {} stage ticks must equal its latency",
            job.job
        );
    }
    assert_eq!(
        markers.len(),
        report.jobs.len(),
        "spans exist exactly for completed jobs"
    );

    // The scenario really exercised the hard cases.
    assert!(
        report.jobs.iter().any(|j| j.degraded.is_some()),
        "scenario must include degraded jobs"
    );
    assert!(report.cache_hits > 0, "scenario must include cache hits");
    assert!(
        log.spans.iter().any(|s| s.stage == Stage::QueueWait),
        "scenario must include queued jobs"
    );
    assert!(
        log.spans.iter().any(|s| s.stage == Stage::Retry),
        "scenario must include retried ticks"
    );
}

/// Spans are part of the determinism contract: kill+resume emits exactly
/// the spans of the uninterrupted twin (no `Recovery*`-style bookkeeping
/// exists in span space, so the logs compare byte-equal).
#[test]
fn kill_and_resume_emits_identical_spans() {
    let config = faulty_config();
    let plan = overload_plan(13);

    let (rec_a, g) = record();
    let mut baseline = CrowdServe::new(config.clone(), 9).unwrap();
    baseline.run(&plan, 600).unwrap();
    drop(g);

    // The doomed leg records privately (its spans died with the crash);
    // only the resume leg's spans are compared against the baseline.
    let bytes = {
        let (_rec, _g) = record();
        let mut doomed = CrowdServe::new(config.clone(), 9)
            .unwrap()
            .with_chaos(ServeKill::MidTick(6));
        assert_eq!(doomed.run(&plan, 600), Err(ServeError::Crashed));
        doomed.journal().durable().to_vec()
    };
    let (rec_b, _g) = record();
    let (_report, _svc) = CrowdServe::resume(config, 9, &plan, &bytes, 600).unwrap();

    assert!(!rec_a.span_log().is_empty());
    assert_eq!(
        rec_a.span_log().to_jsonl(),
        rec_b.span_log().to_jsonl(),
        "resume must reproduce the uninterrupted span log byte-for-byte"
    );
}
