//! The payment ledger.
//!
//! Workers "are paid for each operation they perform" (paper Section 3.4).
//! The ledger records one payment per judgment — including judgments on
//! gold units and judgments later discarded by quality control: the
//! requester pays for the work either way, which is exactly why spam and
//! over-asking hurt.

use crate::worker::WorkerId;
use crowd_core::model::WorkerClass;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A ledger of per-judgment payments.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Ledger {
    total: f64,
    by_class: HashMap<WorkerClass, f64>,
    by_worker: HashMap<WorkerId, f64>,
    judgments: u64,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Records one payment of `amount` to `worker` (of `class`).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite amounts.
    pub fn pay(&mut self, worker: WorkerId, class: WorkerClass, amount: f64) {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "payments must be non-negative"
        );
        self.total += amount;
        *self.by_class.entry(class).or_insert(0.0) += amount;
        *self.by_worker.entry(worker).or_insert(0.0) += amount;
        self.judgments += 1;
    }

    /// Total money spent.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Money spent on workers of `class`.
    pub fn spent_on(&self, class: WorkerClass) -> f64 {
        self.by_class.get(&class).copied().unwrap_or(0.0)
    }

    /// Money earned by `worker`.
    pub fn earned_by(&self, worker: WorkerId) -> f64 {
        self.by_worker.get(&worker).copied().unwrap_or(0.0)
    }

    /// Number of paid judgments.
    pub fn judgments(&self) -> u64 {
        self.judgments
    }

    /// Number of distinct workers paid.
    pub fn workers_paid(&self) -> usize {
        self.by_worker.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payments_accumulate() {
        let mut l = Ledger::new();
        l.pay(WorkerId(0), WorkerClass::Naive, 1.0);
        l.pay(WorkerId(0), WorkerClass::Naive, 1.0);
        l.pay(WorkerId(1), WorkerClass::Expert, 10.0);
        assert_eq!(l.total(), 12.0);
        assert_eq!(l.spent_on(WorkerClass::Naive), 2.0);
        assert_eq!(l.spent_on(WorkerClass::Expert), 10.0);
        assert_eq!(l.earned_by(WorkerId(0)), 2.0);
        assert_eq!(l.earned_by(WorkerId(1)), 10.0);
        assert_eq!(l.judgments(), 3);
        assert_eq!(l.workers_paid(), 2);
    }

    #[test]
    fn empty_ledger_reads_zero() {
        let l = Ledger::new();
        assert_eq!(l.total(), 0.0);
        assert_eq!(l.spent_on(WorkerClass::Expert), 0.0);
        assert_eq!(l.earned_by(WorkerId(9)), 0.0);
        assert_eq!(l.judgments(), 0);
    }

    #[test]
    fn free_work_is_allowed() {
        let mut l = Ledger::new();
        l.pay(WorkerId(0), WorkerClass::Naive, 0.0);
        assert_eq!(l.total(), 0.0);
        assert_eq!(l.judgments(), 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_payment_panics() {
        Ledger::new().pay(WorkerId(0), WorkerClass::Naive, -1.0);
    }
}
