//! Deterministic crash injection for the journaled execution path.
//!
//! A chaos test is only trustworthy when the crash is *reproducible*: the
//! same seed must kill the same run at the same comparison, or a failing
//! resume-equivalence case cannot be replayed. A [`ChaosPlan`] therefore
//! carries one concrete [`InjectionPoint`] — picked by hand or derived
//! from a seed via SplitMix64 — and fires exactly once, by making the
//! [`JournaledOracle`](crate::journal::JournaledOracle) report
//! [`OracleError::Interrupted`](crowd_core::oracle::OracleError::Interrupted)
//! instead of executing.
//!
//! The four injection points cover the distinct crash windows of the
//! write-ahead path:
//!
//! * [`MidBatch`](InjectionPoint::MidBatch) — after the `Scheduled`
//!   record is durable, before any worker is asked: recovery finds a
//!   dangling record and runs the batch live.
//! * [`MidJournalWrite`](InjectionPoint::MidJournalWrite) — half the
//!   `Scheduled` frame reaches the durable journal: recovery must detect
//!   the torn tail by checksum and resume from the last intact record.
//! * [`BetweenRounds`](InjectionPoint::BetweenRounds) — armed by the
//!   algorithm's `RoundEnd` trace event, fires before the next batch
//!   writes anything: the journal ends at a Phase-1 round boundary, and
//!   with a lazy checkpoint cadence the round's unflushed completions
//!   are lost (and re-bought on resume).
//! * [`AtPhaseTransition`](InjectionPoint::AtPhaseTransition) — armed by
//!   `PhaseEnd(Filter)`, fires before the first expert batch journals:
//!   the durable transcript covers Phase 1, Phase 2 has not begun.

use crowd_core::trace::{TraceEvent, TracePhase};

/// Where a [`ChaosPlan`] kills the run. See the module docs for the crash
/// window each variant exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionPoint {
    /// Crash after the numbered batch's `Scheduled` record is durable,
    /// before the batch executes.
    MidBatch {
        /// 0-based journal batch index.
        batch: u64,
    },
    /// Crash while writing the numbered batch's `Scheduled` record: only
    /// half the frame reaches the durable journal.
    MidJournalWrite {
        /// 0-based journal batch index.
        batch: u64,
    },
    /// Crash on the first batch after the numbered Phase-1 filter round
    /// ends.
    BetweenRounds {
        /// 0-based round index, matching `TraceEvent::RoundEnd`.
        round: u32,
    },
    /// Crash on the first batch after Phase 1 ends (the filter→expert
    /// transition).
    AtPhaseTransition,
}

/// SplitMix64 — the repo's standard seed mixer (matches `rand`'s
/// `seed_from_u64` stream construction), used here to derive injection
/// points from sweep seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A single-shot, deterministic kill switch for a journaled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    point: InjectionPoint,
    /// Set by a trace event for the boundary-triggered points; the next
    /// batch then crashes.
    armed: bool,
    /// A plan fires at most once (the oracle is dead afterwards anyway).
    fired: bool,
}

impl ChaosPlan {
    /// A plan that kills the run at exactly `point`.
    pub fn at(point: InjectionPoint) -> Self {
        ChaosPlan {
            point,
            armed: false,
            fired: false,
        }
    }

    /// Derives a plan from a sweep seed: the SplitMix64 stream picks the
    /// injection-point kind and its batch/round parameter, so a seed grid
    /// covers all four crash windows reproducibly.
    pub fn seeded(seed: u64) -> Self {
        let mut s = seed;
        let kind = splitmix64(&mut s) % 4;
        let batch = 1 + splitmix64(&mut s) % 6;
        let round = (splitmix64(&mut s) % 2) as u32;
        ChaosPlan::at(match kind {
            0 => InjectionPoint::MidBatch { batch },
            1 => InjectionPoint::MidJournalWrite { batch },
            2 => InjectionPoint::BetweenRounds { round },
            _ => InjectionPoint::AtPhaseTransition,
        })
    }

    /// The plan's injection point.
    pub fn point(&self) -> InjectionPoint {
        self.point
    }

    /// True once the plan has killed a run.
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Arms boundary-triggered points from the algorithm's trace stream.
    pub fn on_trace(&mut self, event: TraceEvent) {
        match (self.point, event) {
            (InjectionPoint::BetweenRounds { round }, TraceEvent::RoundEnd(r)) if r == round => {
                self.armed = true;
            }
            (InjectionPoint::AtPhaseTransition, TraceEvent::PhaseEnd(TracePhase::Filter)) => {
                self.armed = true;
            }
            _ => {}
        }
    }

    /// Should the write of `batch`'s `Scheduled` record be torn? Consults
    /// and consumes the plan.
    pub fn tears_journal_at(&mut self, batch: u64) -> bool {
        if self.fired {
            return false;
        }
        if matches!(self.point, InjectionPoint::MidJournalWrite { batch: b } if b == batch) {
            self.fired = true;
            return true;
        }
        false
    }

    /// Should the run crash before executing `batch` (its `Scheduled`
    /// record already durable)? Consults and consumes the plan.
    pub fn crashes_at(&mut self, batch: u64) -> bool {
        if self.fired {
            return false;
        }
        if matches!(self.point, InjectionPoint::MidBatch { batch: b } if b == batch) {
            self.fired = true;
            return true;
        }
        false
    }

    /// Should a boundary-armed crash fire now — *before* the next batch
    /// writes anything to the journal? This is the window where a lazy
    /// [`CheckpointPolicy`](crate::journal::CheckpointPolicy) genuinely
    /// loses completed-but-unflushed batches (they are re-bought on
    /// resume). Consults and consumes the plan.
    pub fn fires_armed(&mut self) -> bool {
        if self.fired || !self.armed {
            return false;
        }
        self.fired = true;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mid_batch_fires_exactly_once_at_its_batch() {
        let mut plan = ChaosPlan::at(InjectionPoint::MidBatch { batch: 2 });
        assert!(!plan.crashes_at(0));
        assert!(!plan.crashes_at(1));
        assert!(plan.crashes_at(2));
        assert!(plan.fired());
        assert!(!plan.crashes_at(2), "a plan fires once");
    }

    #[test]
    fn torn_write_only_matches_the_journal_point() {
        let mut plan = ChaosPlan::at(InjectionPoint::MidJournalWrite { batch: 1 });
        assert!(!plan.crashes_at(1), "a torn write is not a plain crash");
        assert!(plan.tears_journal_at(1));
        assert!(!plan.tears_journal_at(1));
    }

    #[test]
    fn round_boundary_arms_then_fires_before_the_next_batch() {
        let mut plan = ChaosPlan::at(InjectionPoint::BetweenRounds { round: 1 });
        assert!(!plan.fires_armed());
        plan.on_trace(TraceEvent::RoundEnd(0));
        assert!(!plan.fires_armed(), "wrong round must not arm");
        plan.on_trace(TraceEvent::RoundEnd(1));
        assert!(plan.fires_armed());
        assert!(!plan.fires_armed(), "a plan fires once");
    }

    #[test]
    fn phase_transition_arms_on_filter_end_only() {
        let mut plan = ChaosPlan::at(InjectionPoint::AtPhaseTransition);
        plan.on_trace(TraceEvent::PhaseStart(TracePhase::Filter));
        plan.on_trace(TraceEvent::PhaseEnd(TracePhase::Expert));
        assert!(!plan.fires_armed());
        plan.on_trace(TraceEvent::PhaseEnd(TracePhase::Filter));
        assert!(plan.fires_armed());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_cover_all_kinds() {
        let mut kinds = std::collections::HashSet::new();
        for seed in 0..64u64 {
            assert_eq!(ChaosPlan::seeded(seed), ChaosPlan::seeded(seed));
            kinds.insert(std::mem::discriminant(&ChaosPlan::seeded(seed).point()));
        }
        assert_eq!(kinds.len(), 4, "64 seeds must hit all four windows");
    }
}
