//! Individual simulated workers.
//!
//! A worker has an identity, a class (naïve or expert), a channel (the
//! labour source she arrives through — CrowdFlower aggregates "multiple
//! channels"), and a behaviour. Honest behaviours follow the error models
//! of `crowd-core`; spammer behaviours model the noise sources the paper
//! lists in its introduction ("input errors, misunderstanding of the
//! requirements, and malicious behavior — crowdsourcing spamming"), which
//! the platform's gold-question quality control is designed to catch.

use crowd_core::element::{ElementId, Value};
use crowd_core::model::{ErrorModel, ThresholdModel, TiePolicy, WorkerClass};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a worker within a [`WorkerPool`](crate::pool::WorkerPool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// The id as an index into pool-sized arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// How a spamming worker answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpamStrategy {
    /// A uniformly random answer, ignoring the elements entirely.
    Random,
    /// Always the first element as presented.
    AlwaysFirst,
    /// Always the second element as presented.
    AlwaysSecond,
}

/// A worker's answering behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Behavior {
    /// An honest worker following the threshold model `T(δ, ε)`.
    Threshold {
        /// Discernment threshold `δ`.
        delta: f64,
        /// Residual error probability `ε`.
        epsilon: f64,
        /// Behaviour on indistinguishable pairs.
        tie: TiePolicy,
    },
    /// An honest worker following the probabilistic model (error `p` per
    /// comparison) — `Threshold { delta: 0, epsilon: p, .. }`.
    Probabilistic {
        /// Per-comparison error probability.
        p: f64,
    },
    /// A spammer.
    Spammer(SpamStrategy),
}

/// A worker profile: identity plus static attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerProfile {
    /// The worker's id.
    pub id: WorkerId,
    /// The worker's class (decides pay rate and which tasks she receives).
    pub class: WorkerClass,
    /// The labour channel the worker arrived through.
    pub channel: String,
    /// The worker's answering behaviour.
    pub behavior: Behavior,
}

/// A live worker: profile plus the mutable state her behaviour needs
/// (persistent tie choices live inside the threshold model).
#[derive(Debug, Clone)]
pub struct Worker {
    profile: WorkerProfile,
    model: Option<ThresholdModel>,
}

impl Worker {
    /// Instantiates a worker from a profile.
    pub fn new(profile: WorkerProfile) -> Self {
        let model = match profile.behavior {
            Behavior::Threshold {
                delta,
                epsilon,
                tie,
            } => Some(ThresholdModel::new(delta, epsilon, tie)),
            Behavior::Probabilistic { p } => {
                Some(ThresholdModel::new(0.0, p, TiePolicy::UniformRandom))
            }
            Behavior::Spammer(_) => None,
        };
        Worker { profile, model }
    }

    /// The worker's profile.
    pub fn profile(&self) -> &WorkerProfile {
        &self.profile
    }

    /// The worker's id.
    pub fn id(&self) -> WorkerId {
        self.profile.id
    }

    /// The worker's class.
    pub fn class(&self) -> WorkerClass {
        self.profile.class
    }

    /// Produces the worker's judgment on a pair, given the (hidden) values.
    pub fn judge(
        &mut self,
        k: ElementId,
        vk: Value,
        j: ElementId,
        vj: Value,
        rng: &mut dyn RngCore,
    ) -> ElementId {
        match (&mut self.model, self.profile.behavior) {
            (Some(model), _) => model.compare(k, vk, j, vj, rng),
            (None, Behavior::Spammer(strategy)) => match strategy {
                SpamStrategy::Random => {
                    if rng.gen_bool(0.5) {
                        k
                    } else {
                        j
                    }
                }
                SpamStrategy::AlwaysFirst => k,
                SpamStrategy::AlwaysSecond => j,
            },
            (None, _) => unreachable!("honest behaviours always carry a model"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const A: ElementId = ElementId(0);
    const B: ElementId = ElementId(1);

    fn profile(behavior: Behavior) -> WorkerProfile {
        WorkerProfile {
            id: WorkerId(0),
            class: WorkerClass::Naive,
            channel: "test".into(),
            behavior,
        }
    }

    #[test]
    fn threshold_worker_is_correct_above_delta() {
        let mut w = Worker::new(profile(Behavior::Threshold {
            delta: 1.0,
            epsilon: 0.0,
            tie: TiePolicy::UniformRandom,
        }));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(w.judge(A, 5.0, B, 1.0, &mut rng), A);
        }
    }

    #[test]
    fn probabilistic_worker_errs_at_rate_p() {
        let mut w = Worker::new(profile(Behavior::Probabilistic { p: 0.25 }));
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 20_000;
        let errors = (0..trials)
            .filter(|_| w.judge(A, 5.0, B, 1.0, &mut rng) == B)
            .count();
        let rate = errors as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn spammers_ignore_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut first = Worker::new(profile(Behavior::Spammer(SpamStrategy::AlwaysFirst)));
        assert_eq!(first.judge(A, 0.0, B, 100.0, &mut rng), A);
        let mut second = Worker::new(profile(Behavior::Spammer(SpamStrategy::AlwaysSecond)));
        assert_eq!(second.judge(A, 100.0, B, 0.0, &mut rng), B);
        let mut random = Worker::new(profile(Behavior::Spammer(SpamStrategy::Random)));
        let a_frac = (0..10_000)
            .filter(|_| random.judge(A, 0.0, B, 100.0, &mut rng) == A)
            .count() as f64
            / 10_000.0;
        assert!((a_frac - 0.5).abs() < 0.03);
    }

    #[test]
    fn worker_accessors() {
        let w = Worker::new(WorkerProfile {
            id: WorkerId(7),
            class: WorkerClass::Expert,
            channel: "pro".into(),
            behavior: Behavior::Probabilistic { p: 0.0 },
        });
        assert_eq!(w.id(), WorkerId(7));
        assert_eq!(w.class(), WorkerClass::Expert);
        assert_eq!(w.profile().channel, "pro");
        assert_eq!(WorkerId(7).to_string(), "w7");
        assert_eq!(WorkerId(7).index(), 7);
    }
}
