//! Deterministic fault injection: dropout, abandonment, latency, and
//! transient no-answer faults.
//!
//! The paper's CrowdFlower campaigns lived with unreliable workers; this
//! module gives the simulator the same messy reality under full control.
//! A [`FaultPlan`] decides every fault *statelessly*: each decision is a
//! pure hash of `(plan seed, decision salt, worker id, sequence number)`,
//! never a draw from the platform's RNG. Two consequences:
//!
//! * **Zero-fault invisibility** — with all rates at zero the plan makes
//!   no decisions at all, the platform's RNG stream is untouched, and
//!   every output byte matches a build without the fault layer.
//! * **Replayability** — the same `FaultPlan` seed replays the same
//!   dropouts, abandonments, and latencies regardless of thread count or
//!   job interleaving, so fault sweeps stay byte-identical at any
//!   `--jobs` value.

use crate::worker::WorkerId;
use serde::{Deserialize, Serialize};

/// Per-judgment latency model, in physical steps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every judgment lands in the step it was assigned (the pre-fault
    /// behaviour).
    Instant,
    /// Geometric latency: each step the answer fails to arrive with
    /// probability `1 - p`, capped at `cap` extra steps. `p = 1` degrades
    /// to [`LatencyModel::Instant`].
    Geometric {
        /// Per-step arrival probability, in `(0, 1]`.
        p: f64,
        /// Upper bound on the extra steps a judgment may take.
        cap: u64,
    },
}

impl LatencyModel {
    fn validate(&self) {
        if let LatencyModel::Geometric { p, cap: _ } = self {
            assert!(
                *p > 0.0 && *p <= 1.0,
                "geometric arrival probability must be in (0, 1], got {p}"
            );
        }
    }

    /// True if the model can never delay a judgment.
    pub fn is_instant(&self) -> bool {
        match self {
            LatencyModel::Instant => true,
            LatencyModel::Geometric { p, cap } => *p >= 1.0 || *cap == 0,
        }
    }
}

/// Fault rates and knobs for one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that a worker drops out of the campaign entirely
    /// before judging anything.
    pub dropout: f64,
    /// Per-judgment probability that the assigned worker abandons the
    /// job mid-flight (no answer, and the worker walks away from the
    /// rest of her batch too).
    pub abandon: f64,
    /// Per-judgment probability of a transient no-answer fault (the
    /// worker stays; only this judgment is lost).
    pub no_answer: f64,
    /// Latency distribution for judgments that do arrive.
    pub latency: LatencyModel,
    /// Judgments arriving more than this many physical steps late are
    /// written off as timed out. `u64::MAX` disables timeouts.
    pub timeout_steps: u64,
}

impl FaultConfig {
    /// No faults at all — the exact pre-fault-layer behaviour.
    pub fn none() -> Self {
        FaultConfig {
            dropout: 0.0,
            abandon: 0.0,
            no_answer: 0.0,
            latency: LatencyModel::Instant,
            timeout_steps: u64::MAX,
        }
    }

    /// Sets the per-worker dropout probability.
    pub fn with_dropout(mut self, p: f64) -> Self {
        self.dropout = p;
        self
    }

    /// Sets the per-judgment abandonment probability.
    pub fn with_abandon(mut self, p: f64) -> Self {
        self.abandon = p;
        self
    }

    /// Sets the per-judgment transient no-answer probability.
    pub fn with_no_answer(mut self, p: f64) -> Self {
        self.no_answer = p;
        self
    }

    /// Sets the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the timeout, in physical steps.
    pub fn with_timeout_steps(mut self, steps: u64) -> Self {
        self.timeout_steps = steps;
        self
    }

    /// True if no knob can ever produce a fault or delay.
    pub fn is_none(&self) -> bool {
        self.dropout == 0.0
            && self.abandon == 0.0
            && self.no_answer == 0.0
            && self.latency.is_instant()
    }

    fn validate(&self) {
        for (name, p) in [
            ("dropout", self.dropout),
            ("abandon", self.abandon),
            ("no_answer", self.no_answer),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} rate must be a probability, got {p}"
            );
        }
        self.latency.validate();
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// What the fault plan decides for one assigned judgment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JudgeFate {
    /// The worker answers, `latency` physical steps late.
    Answer {
        /// Extra physical steps before the answer lands.
        latency: u64,
    },
    /// The worker abandons the judgment (and the rest of her batch).
    Abandon,
    /// A transient fault eats this one judgment; the worker stays.
    NoAnswer,
}

/// A seeded, stateless oracle over every fault decision of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    config: FaultConfig,
    seed: u64,
}

// Decision salts: distinct streams per decision kind.
const SALT_DROPOUT: u64 = 0xD0;
const SALT_ABANDON: u64 = 0xAB;
const SALT_NO_ANSWER: u64 = 0x07;
const SALT_LATENCY: u64 = 0x1A;

impl FaultPlan {
    /// Builds a plan over `config`, seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any rate in `config` is not a probability.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        config.validate();
        FaultPlan { config, seed }
    }

    /// A plan that injects nothing (any seed would do).
    pub fn none() -> Self {
        FaultPlan::new(FaultConfig::none(), 0)
    }

    /// The plan's fault configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// True if this plan can never produce a fault or delay.
    pub fn is_none(&self) -> bool {
        self.config.is_none()
    }

    /// Decides, once and forever, whether `worker` drops out of the
    /// campaign before judging anything.
    pub fn dropped_out(&self, worker: WorkerId) -> bool {
        self.config.dropout > 0.0
            && self.unit_f64(SALT_DROPOUT, u64::from(worker.0), 0) < self.config.dropout
    }

    /// Decides the fate of the `seq`-th judgment the campaign hands to
    /// `worker`. `seq` must be a per-campaign monotone counter so repeats
    /// of the same logical pair get independent fates.
    pub fn fate(&self, worker: WorkerId, seq: u64) -> JudgeFate {
        let w = u64::from(worker.0);
        if self.config.abandon > 0.0 && self.unit_f64(SALT_ABANDON, w, seq) < self.config.abandon {
            return JudgeFate::Abandon;
        }
        if self.config.no_answer > 0.0
            && self.unit_f64(SALT_NO_ANSWER, w, seq) < self.config.no_answer
        {
            return JudgeFate::NoAnswer;
        }
        JudgeFate::Answer {
            latency: self.latency(w, seq),
        }
    }

    fn latency(&self, worker: u64, seq: u64) -> u64 {
        match self.config.latency {
            LatencyModel::Instant => 0,
            LatencyModel::Geometric { p, cap } => {
                if p >= 1.0 || cap == 0 {
                    return 0;
                }
                // Inverse-transform sampling of the geometric distribution
                // of failures before the first success.
                let u = self.unit_f64(SALT_LATENCY, worker, seq);
                let steps = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
                if steps.is_finite() && steps >= 0.0 {
                    (steps as u64).min(cap)
                } else {
                    cap
                }
            }
        }
    }

    /// A uniform draw in `[0, 1)` from the `(salt, worker, seq)` stream.
    fn unit_f64(&self, salt: u64, worker: u64, seq: u64) -> f64 {
        let mut x = self.seed;
        for word in [salt, worker, seq] {
            x = mix(x ^ word.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        // 53 mantissa bits → uniform in [0, 1).
        (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// SplitMix64 finalizer: avalanche a 64-bit word. Shared by every
/// stateless decision stream in the platform — fault fates here, breaker
/// cooldown jitter and per-judgment RNG seeds in [`crate::serve`] — so
/// "seeded and stateless" means one function everywhere.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_fault_free() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        for w in 0..100 {
            assert!(!plan.dropped_out(WorkerId(w)));
            for seq in 0..20 {
                assert_eq!(
                    plan.fate(WorkerId(w), seq),
                    JudgeFate::Answer { latency: 0 }
                );
            }
        }
    }

    #[test]
    fn decisions_are_replayable_and_seed_dependent() {
        let config = FaultConfig::none()
            .with_dropout(0.3)
            .with_abandon(0.2)
            .with_no_answer(0.2)
            .with_latency(LatencyModel::Geometric { p: 0.5, cap: 8 });
        let a = FaultPlan::new(config, 42);
        let b = FaultPlan::new(config, 42);
        let c = FaultPlan::new(config, 43);
        let mut diverged = false;
        for w in 0..50 {
            assert_eq!(a.dropped_out(WorkerId(w)), b.dropped_out(WorkerId(w)));
            for seq in 0..10 {
                assert_eq!(a.fate(WorkerId(w), seq), b.fate(WorkerId(w), seq));
                diverged |= a.fate(WorkerId(w), seq) != c.fate(WorkerId(w), seq);
            }
        }
        assert!(diverged, "different seeds must give different plans");
    }

    #[test]
    fn dropout_rate_is_roughly_respected() {
        let plan = FaultPlan::new(FaultConfig::none().with_dropout(0.25), 7);
        let dropped = (0..10_000)
            .filter(|w| plan.dropped_out(WorkerId(*w)))
            .count();
        assert!(
            (2_000..3_000).contains(&dropped),
            "25% of 10k workers expected to drop, got {dropped}"
        );
    }

    #[test]
    fn fate_rates_are_roughly_respected() {
        let plan = FaultPlan::new(
            FaultConfig::none().with_abandon(0.1).with_no_answer(0.1),
            11,
        );
        let mut abandons = 0usize;
        let mut no_answers = 0usize;
        for w in 0..100 {
            for seq in 0..100 {
                match plan.fate(WorkerId(w), seq) {
                    JudgeFate::Abandon => abandons += 1,
                    JudgeFate::NoAnswer => no_answers += 1,
                    JudgeFate::Answer { latency } => assert_eq!(latency, 0),
                }
            }
        }
        assert!((700..1_300).contains(&abandons), "{abandons}");
        // no-answer is checked after abandon, so its effective rate is
        // 0.1 · 0.9 = 9%.
        assert!((600..1_200).contains(&no_answers), "{no_answers}");
    }

    #[test]
    fn geometric_latency_is_capped_and_varied() {
        let plan = FaultPlan::new(
            FaultConfig::none().with_latency(LatencyModel::Geometric { p: 0.4, cap: 6 }),
            3,
        );
        let mut seen = std::collections::HashSet::new();
        for w in 0..50 {
            for seq in 0..50 {
                match plan.fate(WorkerId(w), seq) {
                    JudgeFate::Answer { latency } => {
                        assert!(latency <= 6);
                        seen.insert(latency);
                    }
                    other => panic!("latency-only plan produced {other:?}"),
                }
            }
        }
        assert!(seen.len() > 3, "latencies should vary, saw {seen:?}");
        assert!(seen.contains(&0), "zero latency must be possible");
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn invalid_rate_panics() {
        FaultPlan::new(FaultConfig::none().with_dropout(1.5), 0);
    }

    #[test]
    fn config_serializes() {
        let config = FaultConfig::none()
            .with_dropout(0.1)
            .with_latency(LatencyModel::Geometric { p: 0.5, cap: 4 });
        let json = serde_json::to_string(&config).unwrap();
        assert!(json.contains("dropout"), "{json}");
        assert!(json.contains("Geometric"), "{json}");
    }
}
