//! Gold-question quality control.
//!
//! CrowdFlower "offers quality-ensured results": workers are continuously
//! scored on gold units, and "responses of workers whose performance on
//! gold comparisons has accuracy less than 70% are ignored" (paper
//! Section 3.1). [`TrustTracker`] implements exactly that policy: it keeps
//! per-worker gold tallies and flags workers below the threshold once they
//! have seen a minimum number of gold questions.

use crate::worker::WorkerId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Per-worker gold performance record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldRecord {
    /// Gold units the worker has judged.
    pub seen: u32,
    /// Gold units the worker answered correctly.
    pub correct: u32,
}

impl GoldRecord {
    /// Gold accuracy, or `None` before any gold judgment.
    pub fn accuracy(&self) -> Option<f64> {
        (self.seen > 0).then(|| self.correct as f64 / self.seen as f64)
    }
}

/// Tracks worker trust from gold-question performance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrustTracker {
    records: HashMap<WorkerId, GoldRecord>,
    /// Accuracy below which a worker's responses are ignored (paper: 0.7).
    threshold: f64,
    /// Gold judgments required before the threshold is enforced — a worker
    /// is innocent until she has had a fair number of chances.
    min_gold: u32,
}

impl TrustTracker {
    /// A tracker with the given exclusion threshold and minimum gold count.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < threshold <= 1`.
    pub fn new(threshold: f64, min_gold: u32) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be in (0, 1]"
        );
        TrustTracker {
            records: HashMap::new(),
            threshold,
            min_gold,
        }
    }

    /// The paper's CrowdFlower policy: 70% accuracy, enforced after 3 gold
    /// judgments.
    pub fn crowdflower_default() -> Self {
        TrustTracker::new(0.7, 3)
    }

    /// Records one gold judgment for `worker`.
    pub fn record(&mut self, worker: WorkerId, correct: bool) {
        let rec = self.records.entry(worker).or_default();
        rec.seen += 1;
        if correct {
            rec.correct += 1;
        }
    }

    /// The worker's gold record (zeroes if she has seen no gold yet).
    pub fn record_of(&self, worker: WorkerId) -> GoldRecord {
        self.records.get(&worker).copied().unwrap_or_default()
    }

    /// True if the worker's responses should be used: either she has not
    /// yet seen `min_gold` gold units, or her accuracy is at least the
    /// threshold.
    pub fn is_trusted(&self, worker: WorkerId) -> bool {
        let rec = self.record_of(worker);
        if rec.seen < self.min_gold {
            return true;
        }
        rec.accuracy().is_none_or(|a| a >= self.threshold)
    }

    /// All currently untrusted (spam-flagged) workers.
    pub fn untrusted(&self) -> HashSet<WorkerId> {
        self.records
            .keys()
            .copied()
            .filter(|&w| !self.is_trusted(w))
            .collect()
    }

    /// The exclusion threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Default for TrustTracker {
    fn default() -> Self {
        TrustTracker::crowdflower_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: WorkerId = WorkerId(0);

    #[test]
    fn fresh_workers_are_trusted() {
        let t = TrustTracker::crowdflower_default();
        assert!(t.is_trusted(W));
        assert_eq!(t.record_of(W), GoldRecord::default());
        assert!(t.untrusted().is_empty());
    }

    #[test]
    fn accuracy_below_threshold_excludes() {
        let mut t = TrustTracker::new(0.7, 3);
        t.record(W, true);
        t.record(W, false);
        assert!(t.is_trusted(W), "only 2 gold seen, below min_gold");
        t.record(W, false);
        // 1/3 ≈ 0.33 < 0.7 with min_gold reached.
        assert!(!t.is_trusted(W));
        assert!(t.untrusted().contains(&W));
    }

    #[test]
    fn good_workers_stay_trusted() {
        let mut t = TrustTracker::new(0.7, 3);
        for i in 0..10 {
            t.record(W, i % 10 != 0); // 90% accuracy
        }
        assert!(t.is_trusted(W));
    }

    #[test]
    fn boundary_accuracy_is_trusted() {
        // Exactly 70%: "accuracy less than 70%" is ignored, so 0.7 passes.
        let mut t = TrustTracker::new(0.7, 3);
        for i in 0..10 {
            t.record(W, i < 7);
        }
        assert_eq!(t.record_of(W).accuracy(), Some(0.7));
        assert!(t.is_trusted(W));
    }

    #[test]
    fn just_below_the_boundary_excludes() {
        // 69% < 70%: one miss past the boundary flips the flag.
        let mut t = TrustTracker::new(0.7, 3);
        for i in 0..100 {
            t.record(W, i < 69);
        }
        assert_eq!(t.record_of(W).accuracy(), Some(0.69));
        assert!(!t.is_trusted(W));
    }

    #[test]
    fn min_gold_zero_enforces_from_the_first_judgment() {
        let mut t = TrustTracker::new(0.7, 0);
        // With no gold seen yet there is no accuracy to hold against her.
        assert!(t.is_trusted(W));
        assert!(t.untrusted().is_empty());
        // But the very first miss counts: 0/1 < 0.7 with no grace period.
        t.record(W, false);
        assert!(!t.is_trusted(W));
        // And a single correct answer at min_gold = 0 is already enough.
        let w2 = WorkerId(1);
        t.record(w2, true);
        assert!(t.is_trusted(w2));
    }

    #[test]
    fn redemption_is_possible() {
        let mut t = TrustTracker::new(0.7, 3);
        for _ in 0..3 {
            t.record(W, false);
        }
        assert!(!t.is_trusted(W));
        for _ in 0..20 {
            t.record(W, true);
        }
        assert!(t.is_trusted(W), "20/23 ≈ 0.87 >= 0.7");
    }

    #[test]
    #[should_panic(expected = "threshold must be in (0, 1]")]
    fn zero_threshold_panics() {
        TrustTracker::new(0.0, 1);
    }
}
