//! crowd-serve: an overload-robust multi-tenant max-finding service.
//!
//! The paper runs one campaign at a time; a production crowdsourcing
//! platform runs *many*, for many requesters, against a worker supply
//! that fluctuates and fails. This module multiplexes concurrent
//! two-phase max-finding jobs over sharded worker pools with the
//! robustness machinery such a service needs:
//!
//! * **Admission control** ([`tenant`]) — per-tenant token buckets
//!   denominated in comparisons. A job's worst-case comparison cost is
//!   reserved up front, so the sum charged to a tenant provably never
//!   exceeds what its bucket dispensed; unused reservation is refunded
//!   at completion. A bounded FIFO queue absorbs bursts; beyond it,
//!   submissions are shed with a typed retry hint instead of queueing
//!   unboundedly.
//! * **Fair dispatch** ([`service`]) — deficit-round-robin over active
//!   jobs, with per-shard in-flight windows as the backpressure bound.
//! * **Worker quarantine** ([`breaker`]) — per-worker circuit breakers:
//!   failure streaks trip the breaker open, a seeded cooldown later a
//!   half-open probe decides recovery. Dispatch routes around shards
//!   with no healthy workers.
//! * **Graceful degradation** ([`job`]) — every admitted job terminates
//!   with a winner; anything less than the full protocol is labelled
//!   with an explicit [`DegradedReason`](crowd_core::trace::DegradedReason)
//!   (deadline lapsed, expert pool exhausted, budget exhausted, dead
//!   letters). The service never panics and never hangs.
//! * **Cross-job judgment reuse** ([`cache`]) — a deterministic,
//!   content-keyed verdict store consulted *before* shard dispatch, so
//!   overlapping catalogs stop re-buying identical judgments. A
//!   confidence/staleness policy decides when a cached verdict may
//!   substitute for fresh votes; hits are journaled, never charged, and
//!   never consume in-flight window slots.
//! * **Causal tracing & SLOs** ([`slo`]) — every tick an admitted job
//!   stays alive is attributed to exactly one pipeline stage
//!   (dispatch wait, cache lookup, shard execution, retry, breaker
//!   quarantine), emitted as deterministic `crowd_obs` spans whose tick
//!   sums reconcile exactly with the job's latency; per-tenant sliding-
//!   window SLO monitors emit breach/recovery events and error-budget
//!   burn rates into the run report.
//! * **Crash recovery** ([`service`]) — a write-ahead journal (framed
//!   through [`crate::journal::Journal`], sharing its torn-tail
//!   detection) makes every tick's dispatch durable before execution;
//!   [`CrowdServe::resume`] audits a replay against the journal and
//!   reproduces the interrupted run byte-for-byte.
//!
//! Everything runs on a logical clock with stateless seeded randomness
//! ([`arrival`] for load, `crate::fault` for worker behaviour), so any
//! run — overloaded, quarantined, killed and resumed — is deterministic
//! and replayable.

pub mod arrival;
pub mod breaker;
pub mod cache;
pub mod job;
pub mod service;
pub mod shard;
pub mod slo;
pub mod tenant;

pub use arrival::ArrivalPlan;
pub use breaker::{BreakerPolicy, BreakerState, CircuitBreaker, FailureVerdict};
pub use cache::{CachePolicy, CacheStats, JudgmentCache};
pub use job::{ActiveJob, JobId, JobPhase, JobSpec};
pub use service::{
    Admission, CacheHitRecord, CompletedJob, CrowdServe, DispatchRecord, ResumeError, ServeConfig,
    ServeError, ServeKill, ServeReport, TenantReport,
};
pub use shard::{PairOutcome, ShardSpec, WorkerShard, SHARD_TIE_POLICY};
pub use slo::{SloMonitor, SloPolicy, SloTransition};
pub use tenant::{TenantId, TenantPolicy, TokenBucket};
