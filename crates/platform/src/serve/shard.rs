//! Worker shards: the execution units the service dispatches pairs onto.
//!
//! A shard is a small homogeneous worker pool (one [`WorkerClass`]) with
//! its own fault plan, per-worker circuit breakers, and a bounded
//! per-tick in-flight window. Dispatch routes around shards with no
//! healthy workers; inside a shard, [`WorkerShard::execute_pair`] runs
//! one comparison to completion — collecting the requested votes,
//! retrying faults on fresh workers, and reporting a typed
//! [`DeadLetterReason`] instead of hanging when the pool cannot deliver.
//!
//! Determinism: worker choice is a rotation scan over breaker state (all
//! integer state), judgment fates come from the stateless [`FaultPlan`],
//! and each usable judgment draws from a fresh `StdRng` seeded by
//! `mix(shard seed, worker, sequence)` — no shared RNG stream exists, so
//! outcomes are independent of job interleaving and thread count.

use crate::fault::{mix, FaultConfig, FaultPlan, JudgeFate};
use crate::serve::breaker::{BreakerPolicy, CircuitBreaker};
use crate::worker::{Behavior, Worker, WorkerId, WorkerProfile};
use crowd_core::element::{ElementId, Value};
use crowd_core::model::{TiePolicy, WorkerClass};
use crowd_core::trace::{DeadLetterReason, FaultKind};
use crowd_obs::{counter_add, emit, names, observe, Event};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The tie policy every shard worker judges under. The judgment cache
/// keys verdicts on it: if shards ever gain per-spec tie policies, the
/// cache key must pick up the spec's policy instead of this constant.
pub const SHARD_TIE_POLICY: TiePolicy = TiePolicy::UniformRandom;

/// Static description of one shard, part of the service config digest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// The worker class every member of the shard belongs to.
    pub class: WorkerClass,
    /// Workers hired into the shard.
    pub workers: u32,
    /// Discernment threshold `δ` of the shard's threshold-model workers.
    pub delta: f64,
    /// Residual error probability `ε` of the shard's workers.
    pub epsilon: f64,
    /// Judgments the shard accepts per tick (backpressure bound; retries
    /// within an already-dispatched pair may overflow it).
    pub window: u32,
    /// The fault environment the shard's workers live in.
    pub fault: FaultConfig,
}

impl ShardSpec {
    /// A fault-free shard of `workers` honest `class` workers: `δ = 0`
    /// (only exact ties are indistinguishable) and `ε = 0` (no residual
    /// error), so every distinguishable pair is judged correctly.
    pub fn honest(class: WorkerClass, workers: u32, window: u32) -> Self {
        ShardSpec {
            class,
            workers,
            delta: 0.0,
            epsilon: 0.0,
            window,
            fault: FaultConfig::none(),
        }
    }

    /// Sets the fault environment.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Sets the worker error model.
    pub fn with_model(mut self, delta: f64, epsilon: f64) -> Self {
        self.delta = delta;
        self.epsilon = epsilon;
        self
    }
}

/// The outcome of executing one pair on a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairOutcome {
    /// The majority winner (lower [`ElementId`] breaks ties). `None` only
    /// when not a single usable judgment arrived.
    pub winner: Option<ElementId>,
    /// Usable judgments collected — what the tenant is charged.
    pub answers: u32,
    /// Judgment assignments made, including faulted ones.
    pub attempts: u32,
    /// `Some` when the shard could not collect the full vote count.
    pub dead: Option<DeadLetterReason>,
}

/// A live shard: workers, breakers, fault plan, and dispatch window.
#[derive(Debug, Clone)]
pub struct WorkerShard {
    id: u32,
    spec: ShardSpec,
    workers: Vec<Worker>,
    breakers: Vec<CircuitBreaker>,
    fault: FaultPlan,
    judge_seed: u64,
    seq: u64,
    rotation: usize,
    used: u32,
    trips: u64,
}

impl WorkerShard {
    /// Hires `spec.workers` honest threshold-model workers into shard
    /// `id`, faulted and judged under streams derived from `seed`.
    pub fn new(id: u32, spec: ShardSpec, seed: u64) -> Self {
        let shard_salt = mix(seed ^ u64::from(id).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let workers = (0..spec.workers)
            .map(|w| {
                Worker::new(WorkerProfile {
                    id: WorkerId(w),
                    class: spec.class,
                    channel: format!("serve-s{id}"),
                    behavior: Behavior::Threshold {
                        delta: spec.delta,
                        epsilon: spec.epsilon,
                        tie: SHARD_TIE_POLICY,
                    },
                })
            })
            .collect();
        WorkerShard {
            id,
            spec,
            workers,
            breakers: vec![CircuitBreaker::new(); spec.workers as usize],
            fault: FaultPlan::new(spec.fault, mix(shard_salt ^ 0xFA)),
            judge_seed: mix(shard_salt ^ 0x1D),
            seq: 0,
            rotation: 0,
            used: 0,
            trips: 0,
        }
    }

    /// The shard's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The shard's static spec.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// The shard's worker class.
    pub fn class(&self) -> WorkerClass {
        self.spec.class
    }

    /// Monotone count of judgment assignments the shard has made — part
    /// of the journal audit trail, so resume can cross-check replay.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Total breaker trips on this shard.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Resets the per-tick dispatch window.
    pub fn begin_tick(&mut self) {
        self.used = 0;
    }

    /// Judgments still admissible this tick.
    pub fn remaining_window(&self) -> u32 {
        self.spec.window.saturating_sub(self.used)
    }

    /// Reserves `votes` of the tick window for a dispatched pair.
    pub fn reserve_window(&mut self, votes: u32) {
        self.used = self.used.saturating_add(votes);
    }

    /// Workers that have not dropped out and whose breakers would admit
    /// work at `tick` (read-only: no half-open probes are spent).
    pub fn healthy_workers(&self, tick: u64) -> usize {
        self.breakers
            .iter()
            .enumerate()
            .filter(|(w, b)| !self.fault.dropped_out(WorkerId(*w as u32)) && b.would_admit(tick))
            .count()
    }

    /// Picks the next admissible worker after the rotation cursor,
    /// skipping `tried` (the pair's distinct-workers invariant), dropouts,
    /// and quarantined workers. Skipping `tried` *before* consulting the
    /// breaker keeps half-open probes unspent on ineligible workers.
    fn pick_worker(&mut self, tick: u64, tried: &[bool]) -> Option<usize> {
        let n = self.workers.len();
        for step in 0..n {
            let w = (self.rotation + step) % n;
            if tried[w] || self.fault.dropped_out(WorkerId(w as u32)) {
                continue;
            }
            if self.breakers[w].admits(tick) {
                self.rotation = (w + 1) % n;
                return Some(w);
            }
        }
        None
    }

    /// Why no worker could be picked: untried workers exist but are all
    /// quarantined (`NoHealthyWorkers` — the quarantine storm) versus the
    /// fresh-worker supply itself ran dry (`NoFreshWorkers`).
    fn starvation_reason(&self, tried: &[bool]) -> DeadLetterReason {
        let untried_alive = (0..self.workers.len())
            .any(|w| !tried[w] && !self.fault.dropped_out(WorkerId(w as u32)));
        if untried_alive {
            DeadLetterReason::NoHealthyWorkers
        } else {
            DeadLetterReason::NoFreshWorkers
        }
    }

    /// Runs one comparison of `k` vs `j` to completion: collects `votes`
    /// usable judgments from distinct workers, retrying faults up to
    /// `votes × (1 + max_retries)` total assignments, and drives every
    /// breaker transition (with its events) on the way.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_pair(
        &mut self,
        tick: u64,
        k: ElementId,
        vk: Value,
        j: ElementId,
        vj: Value,
        votes: u32,
        max_retries: u32,
        breaker: &BreakerPolicy,
    ) -> PairOutcome {
        let class = self.spec.class;
        let budget = votes.saturating_mul(1 + max_retries).max(1);
        let timeout = self.spec.fault.timeout_steps;
        let mut tried = vec![false; self.workers.len()];
        let mut votes_k = 0u32;
        let mut votes_j = 0u32;
        let mut answers = 0u32;
        let mut attempts = 0u32;
        let mut dead = None;

        while answers < votes && attempts < budget {
            let Some(w) = self.pick_worker(tick, &tried) else {
                dead = Some(self.starvation_reason(&tried));
                break;
            };
            tried[w] = true;
            attempts += 1;
            self.seq += 1;
            let fate = self.fault.fate(WorkerId(w as u32), self.seq);
            let fault_kind = match fate {
                JudgeFate::Answer { latency } if latency <= timeout => {
                    answers += 1;
                    observe(
                        names::LATENCY_STEPS,
                        &[("class", crowd_obs::class_label(class))],
                        latency,
                    );
                    if self.breakers[w].on_success() {
                        emit(Event::BreakerProbed {
                            shard: self.id,
                            worker: w as u32,
                            recovered: true,
                        });
                    }
                    let mut rng = StdRng::seed_from_u64(mix(self.judge_seed
                        ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ self.seq.rotate_left(17)));
                    if self.workers[w].judge(k, vk, j, vj, &mut rng) == k {
                        votes_k += 1;
                    } else {
                        votes_j += 1;
                    }
                    continue;
                }
                JudgeFate::Answer { .. } => FaultKind::Timeout,
                JudgeFate::Abandon => FaultKind::Abandon,
                JudgeFate::NoAnswer => FaultKind::NoAnswer,
            };
            emit(Event::FaultObserved {
                class,
                kind: fault_kind,
            });
            counter_add(
                names::FAULTS_TOTAL,
                &[
                    ("class", crowd_obs::class_label(class)),
                    ("kind", crowd_obs::kind_label(fault_kind)),
                ],
                1,
            );
            let verdict = self.breakers[w].on_failure(tick, breaker, self.judge_seed, w as u64);
            if verdict.was_probe {
                emit(Event::BreakerProbed {
                    shard: self.id,
                    worker: w as u32,
                    recovered: false,
                });
            }
            if let Some(cooldown) = verdict.tripped {
                self.trips += 1;
                let streak = if verdict.was_probe {
                    1
                } else {
                    breaker.trip_threshold
                };
                emit(Event::BreakerTripped {
                    shard: self.id,
                    worker: w as u32,
                    streak,
                    cooldown_ticks: cooldown,
                });
                counter_add(
                    names::SERVE_BREAKER_TRIPS_TOTAL,
                    &[("shard", &format!("s{}", self.id))],
                    1,
                );
            }
        }

        if answers < votes && dead.is_none() {
            dead = Some(DeadLetterReason::RetriesExhausted);
        }
        let winner = if answers == 0 {
            None
        } else if votes_j > votes_k {
            Some(j)
        } else if votes_k > votes_j {
            Some(k)
        } else {
            Some(k.min(j))
        };
        PairOutcome {
            winner,
            answers,
            attempts,
            dead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_obs::{install_recorder, Recorder, RecorderGuard};
    use std::sync::Arc;

    fn quiet() -> (Arc<Recorder>, RecorderGuard) {
        let rec = Arc::new(Recorder::new());
        let guard = install_recorder(rec.clone());
        (rec, guard)
    }

    fn honest_shard(workers: u32) -> WorkerShard {
        WorkerShard::new(0, ShardSpec::honest(WorkerClass::Naive, workers, 64), 42)
    }

    #[test]
    fn honest_shard_returns_the_true_winner() {
        let (_rec, _g) = quiet();
        let mut shard = honest_shard(8);
        let out = shard.execute_pair(
            0,
            ElementId(0),
            1.0,
            ElementId(1),
            9.0,
            3,
            2,
            &BreakerPolicy::default_on(),
        );
        assert_eq!(out.winner, Some(ElementId(1)));
        assert_eq!(out.answers, 3);
        assert_eq!(out.attempts, 3);
        assert_eq!(out.dead, None);
    }

    #[test]
    fn small_pool_dead_letters_no_fresh_workers() {
        let (_rec, _g) = quiet();
        let mut shard = honest_shard(2);
        let out = shard.execute_pair(
            0,
            ElementId(0),
            1.0,
            ElementId(1),
            9.0,
            3,
            2,
            &BreakerPolicy::default_on(),
        );
        // Two distinct workers can supply at most two of three votes.
        assert_eq!(out.answers, 2);
        assert_eq!(out.dead, Some(DeadLetterReason::NoFreshWorkers));
        assert_eq!(
            out.winner,
            Some(ElementId(1)),
            "partial majority still counts"
        );
    }

    #[test]
    fn quarantine_storm_dead_letters_no_healthy_workers() {
        let (_rec, _g) = quiet();
        let spec = ShardSpec::honest(WorkerClass::Naive, 3, 64)
            .with_fault(FaultConfig::none().with_no_answer(1.0));
        let mut shard = WorkerShard::new(0, spec, 7);
        let policy = BreakerPolicy::default_on()
            .with_trip_threshold(1)
            .with_cooldown(100, 0);
        // Every judgment faults, every failure trips: the first pair
        // quarantines the whole shard and dies RetriesExhausted or
        // starves; the second finds nobody healthy.
        let _ = shard.execute_pair(0, ElementId(0), 1.0, ElementId(1), 2.0, 3, 3, &policy);
        let out = shard.execute_pair(1, ElementId(0), 1.0, ElementId(1), 2.0, 3, 3, &policy);
        assert_eq!(out.answers, 0);
        assert_eq!(out.winner, None);
        assert_eq!(out.dead, Some(DeadLetterReason::NoHealthyWorkers));
        assert_eq!(shard.healthy_workers(1), 0);
        assert!(shard.trips() >= 3, "every worker tripped at least once");
    }

    #[test]
    fn faulty_judgments_are_retried_on_fresh_workers() {
        let (rec, _g) = quiet();
        let spec = ShardSpec::honest(WorkerClass::Naive, 16, 64)
            .with_fault(FaultConfig::none().with_no_answer(0.4));
        let mut shard = WorkerShard::new(0, spec, 9);
        let out = shard.execute_pair(
            0,
            ElementId(0),
            1.0,
            ElementId(1),
            9.0,
            3,
            3,
            &BreakerPolicy::disabled(),
        );
        assert_eq!(out.answers, 3);
        assert_eq!(out.winner, Some(ElementId(1)));
        assert!(out.attempts >= 3);
        let faults = rec
            .events()
            .iter()
            .filter(|e| matches!(e, Event::FaultObserved { .. }))
            .count();
        assert_eq!(faults as u32, out.attempts - out.answers);
    }

    #[test]
    fn execution_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let (_rec, _g) = quiet();
            let spec = ShardSpec::honest(WorkerClass::Naive, 8, 64)
                .with_model(0.5, 0.3)
                .with_fault(FaultConfig::none().with_no_answer(0.2));
            let mut shard = WorkerShard::new(3, spec, seed);
            (0..20)
                .map(|t| {
                    shard.execute_pair(
                        t,
                        ElementId(0),
                        1.0,
                        ElementId(1),
                        1.2,
                        3,
                        2,
                        &BreakerPolicy::default_on(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "seed must matter");
    }

    #[test]
    fn tie_breaks_to_lower_element_id() {
        let (_rec, _g) = quiet();
        let mut shard = honest_shard(8);
        // Equal values → distance 0 ≤ δ → every vote is a coin flip; a
        // 1–1 split of the 2 votes must resolve to the lower id.
        let out = shard.execute_pair(
            0,
            ElementId(4),
            5.0,
            ElementId(2),
            5.0,
            2,
            0,
            &BreakerPolicy::disabled(),
        );
        assert_eq!(out.answers, 2);
        assert!(out.winner == Some(ElementId(2)) || out.winner == Some(ElementId(4)));
    }
}
