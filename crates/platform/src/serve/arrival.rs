//! Seeded synthetic arrival processes for the service.
//!
//! An [`ArrivalPlan`] turns `(seed, rate, tick)` into the exact list of
//! jobs submitted at that tick — statelessly, the way [`FaultPlan`](crate::fault::FaultPlan)
//! (crate::fault::FaultPlan) decides fates. A plan replays the same
//! offered load no matter how the service interleaves execution, which is
//! what makes overload experiments and kill+resume runs comparable
//! byte-for-byte.
//!
//! The rate is a rational `rate_num / rate_den` in jobs per tick, so
//! "2× capacity" sweeps can dial fractional rates without floating-point
//! accumulation: job `i` arrives at the first tick `t` with
//! `⌊(t+1)·num/den⌋ > i`.

use crate::fault::mix;
use crate::serve::job::JobSpec;
use crate::serve::tenant::TenantId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A deterministic open-loop arrival process over a tenant population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalPlan {
    /// Seed for tenant assignment, catalog sizes, and values.
    pub seed: u64,
    /// Arrival-rate numerator (jobs per `rate_den` ticks).
    pub rate_num: u64,
    /// Arrival-rate denominator.
    pub rate_den: u64,
    /// Total jobs the plan offers before going quiet.
    pub total_jobs: u64,
    /// Tenants to spread jobs across (round-robin-ish via hashing).
    pub tenants: u32,
    /// Smallest catalog a job may carry.
    pub catalog_min: u32,
    /// Largest catalog a job may carry.
    pub catalog_max: u32,
    /// Phase-1 votes per comparison.
    pub votes: u32,
    /// Phase-2 votes per comparison.
    pub expert_votes: u32,
    /// Per-job deadline, in ticks after admission.
    pub deadline_ticks: u64,
    /// Percentage (0–100) of each catalog drawn from the shared item
    /// universe instead of fresh per-job values. Zero leaves every spec
    /// bit-identical to a plan without overlap.
    pub overlap_percent: u32,
    /// Size of the shared item universe overlapping catalogs draw from.
    pub shared_universe: u32,
}

impl ArrivalPlan {
    /// A plan offering `total_jobs` at `rate_num / rate_den` jobs per
    /// tick across `tenants` tenants, with sane protocol defaults.
    pub fn new(seed: u64, rate_num: u64, rate_den: u64, total_jobs: u64, tenants: u32) -> Self {
        ArrivalPlan {
            seed,
            rate_num,
            rate_den: rate_den.max(1),
            total_jobs,
            tenants: tenants.max(1),
            catalog_min: 4,
            catalog_max: 12,
            votes: 3,
            expert_votes: 3,
            deadline_ticks: 64,
            overlap_percent: 0,
            shared_universe: 16,
        }
    }

    /// Dials how much of each catalog is drawn from a shared item
    /// universe of `universe` distinct values (`percent` clamped to
    /// 0–100, `universe` to ≥ 1). Jobs sharing universe items give a
    /// cross-job judgment cache something to reuse; `percent = 0` is
    /// exactly the no-overlap plan.
    pub fn with_overlap(mut self, percent: u32, universe: u32) -> Self {
        self.overlap_percent = percent.min(100);
        self.shared_universe = universe.max(1);
        self
    }

    /// Sets the catalog-size range (clamped to `min ≥ 1`, `max ≥ min`).
    pub fn with_catalog(mut self, min: u32, max: u32) -> Self {
        self.catalog_min = min.max(1);
        self.catalog_max = max.max(self.catalog_min);
        self
    }

    /// Sets the vote requirements.
    pub fn with_votes(mut self, votes: u32, expert_votes: u32) -> Self {
        self.votes = votes;
        self.expert_votes = expert_votes;
        self
    }

    /// Sets the per-job deadline.
    pub fn with_deadline(mut self, ticks: u64) -> Self {
        self.deadline_ticks = ticks;
        self
    }

    /// Jobs that have arrived strictly before `tick`.
    fn count_before(&self, tick: u64) -> u64 {
        (tick.saturating_mul(self.rate_num) / self.rate_den).min(self.total_jobs)
    }

    /// The specs arriving exactly at `tick`, in arrival order.
    pub fn arrivals_at(&self, tick: u64) -> Vec<JobSpec> {
        (self.count_before(tick)..self.count_before(tick + 1))
            .map(|idx| self.spec(idx))
            .collect()
    }

    /// True when every job has arrived by `tick` (inclusive).
    pub fn exhausted(&self, tick: u64) -> bool {
        self.count_before(tick + 1) >= self.total_jobs
    }

    /// The `idx`-th job of the plan (stateless, so any tick's arrivals
    /// can be recomputed during resume without replaying the stream).
    pub fn spec(&self, idx: u64) -> JobSpec {
        let tenant =
            TenantId((mix(self.seed ^ idx.rotate_left(7) ^ 0x7E) % u64::from(self.tenants)) as u32);
        let span = u64::from(self.catalog_max - self.catalog_min + 1);
        let n = self.catalog_min + (mix(self.seed ^ idx.rotate_left(23) ^ 0xCA) % span) as u32;
        let mut rng =
            StdRng::seed_from_u64(mix(self.seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let mut values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1000.0)).collect();
        // Overlap: replace a prefix with consecutive items from the
        // shared universe. The prefix length is capped at the universe
        // size so one catalog never repeats an item (bit-equal values
        // are an id tie-break, not a reusable judgment). The fresh
        // values are drawn first, above, so `overlap_percent = 0`
        // leaves the spec bit-identical to a plan without overlap.
        let shared = (n.saturating_mul(self.overlap_percent) / 100).min(self.shared_universe);
        if shared > 0 {
            let universe = u64::from(self.shared_universe);
            let start = mix(self.seed ^ idx.rotate_left(11) ^ 0xB5) % universe;
            for (slot, value) in values.iter_mut().take(shared as usize).enumerate() {
                *value = self.universe_value((start + slot as u64) % universe);
            }
        }
        JobSpec {
            tenant,
            values,
            votes: self.votes,
            expert_votes: self.expert_votes,
            deadline_ticks: self.deadline_ticks,
        }
    }

    /// The bit-exact value of shared-universe item `u`: distinct per
    /// item (10.0 spacing dominates the sub-1.0 seeded jitter), and a
    /// pure function of `(seed, u)` so every job that draws item `u`
    /// carries the identical f64 bits — the property the judgment
    /// cache's content keying relies on.
    fn universe_value(&self, u: u64) -> f64 {
        (u as f64) * 10.0
            + ((mix(self.seed ^ u.wrapping_mul(0xA24B_AED4_963E_E407)) % 1000) as f64) / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_evenly_spread_and_complete() {
        let plan = ArrivalPlan::new(1, 3, 2, 10, 2);
        let mut seen = 0u64;
        let mut by_tick = Vec::new();
        for t in 0..20 {
            let batch = plan.arrivals_at(t);
            by_tick.push(batch.len());
            seen += batch.len() as u64;
        }
        assert_eq!(seen, 10, "every job arrives exactly once");
        assert!(plan.exhausted(19));
        assert!(!plan.exhausted(2));
        // 1.5 jobs/tick → alternating 1-and-2 batches until exhausted.
        assert_eq!(&by_tick[..7], &[1, 2, 1, 2, 1, 2, 1]);
    }

    #[test]
    fn specs_are_deterministic_and_within_bounds() {
        let plan = ArrivalPlan::new(9, 1, 1, 50, 3).with_catalog(2, 5);
        for idx in 0..50 {
            let a = plan.spec(idx);
            let b = plan.spec(idx);
            assert_eq!(a, b, "stateless respec must be identical");
            assert!((2..=5).contains(&(a.values.len() as u32)));
            assert!(a.tenant.0 < 3);
        }
        let tenants: std::collections::BTreeSet<u32> =
            (0..50).map(|i| plan.spec(i).tenant.0).collect();
        assert_eq!(tenants.len(), 3, "all tenants receive load");
    }

    #[test]
    fn zero_overlap_is_bit_identical_to_a_plan_without_overlap() {
        let base = ArrivalPlan::new(7, 1, 1, 40, 2);
        let zero = base.with_overlap(0, 8);
        for idx in 0..40 {
            let (a, b) = (base.spec(idx), zero.spec(idx));
            assert_eq!(a.values.len(), b.values.len());
            for (x, y) in a.values.iter().zip(&b.values) {
                assert_eq!(x.to_bits(), y.to_bits(), "job {idx}: value bits must match");
            }
        }
    }

    #[test]
    fn overlapping_jobs_share_bit_identical_universe_values() {
        let plan = ArrivalPlan::new(7, 1, 1, 60, 2)
            .with_catalog(4, 6)
            .with_overlap(100, 6);
        // With a 6-item universe and 100% overlap, every catalog value is
        // a universe item; collect the distinct bit patterns seen.
        let mut bits = std::collections::BTreeSet::new();
        for idx in 0..60 {
            for v in plan.spec(idx).values {
                bits.insert(v.to_bits());
            }
        }
        assert_eq!(bits.len(), 6, "all values drawn from the 6-item universe");
    }

    #[test]
    fn overlap_prefix_never_repeats_an_item_within_a_job() {
        let plan = ArrivalPlan::new(3, 1, 1, 30, 2)
            .with_catalog(4, 12)
            .with_overlap(100, 5);
        for idx in 0..30 {
            let spec = plan.spec(idx);
            let distinct: std::collections::BTreeSet<u64> =
                spec.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                distinct.len(),
                spec.values.len(),
                "job {idx}: catalog values must be pairwise distinct"
            );
        }
    }

    #[test]
    fn seed_changes_the_offered_load() {
        let a = ArrivalPlan::new(1, 1, 1, 20, 2);
        let b = ArrivalPlan::new(2, 1, 1, 20, 2);
        assert!(
            (0..20).any(|i| a.spec(i) != b.spec(i)),
            "different seeds must offer different jobs"
        );
    }
}
