//! Per-tenant SLO monitoring on the service's logical clock.
//!
//! A tenant's objective is a statement about *completions*: within any
//! sliding window of [`SloPolicy::window_ticks`] ticks, at most
//! [`SloPolicy::bad_budget_bps`] (in basis points) of the jobs that
//! completed may be **bad** — degraded, or slower than
//! [`SloPolicy::latency_objective_ticks`]. The monitor tracks each
//! tenant's window, flips between healthy and breached with hysteresis-free
//! edge detection (one event per transition), and keeps cumulative burn
//! counters for the run report.
//!
//! Everything is a pure function of the logical clock and the completion
//! stream, so breach/recovery events land at identical ticks in reruns,
//! at any `--jobs`, and across kill+resume.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A tenant service-level objective over completed jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloPolicy {
    /// Master switch; a disabled monitor records nothing and never emits.
    pub enabled: bool,
    /// Sliding-window length, in ticks. A completion at tick `t` leaves
    /// the window once the clock passes `t + window_ticks`.
    pub window_ticks: u64,
    /// Latency objective: a completion slower than this (in ticks,
    /// submission to completion) counts against the error budget.
    pub latency_objective_ticks: u64,
    /// Error budget: bad completions allowed per window, in basis points
    /// of the window's completions (10_000 = all of them).
    pub bad_budget_bps: u32,
    /// Completions the window must hold before a breach can be declared —
    /// one bad job out of one is not a trend.
    pub min_samples: u64,
}

impl SloPolicy {
    /// The default posture experiments run with: a 64-tick window, a
    /// 32-tick latency objective, a 10% error budget, and at least 4
    /// samples before judging.
    pub fn default_on() -> Self {
        SloPolicy {
            enabled: true,
            window_ticks: 64,
            latency_objective_ticks: 32,
            bad_budget_bps: 1_000,
            min_samples: 4,
        }
    }

    /// Monitoring off.
    pub fn disabled() -> Self {
        SloPolicy {
            enabled: false,
            ..Self::default_on()
        }
    }

    /// Overrides the window length.
    pub fn with_window_ticks(mut self, ticks: u64) -> Self {
        self.window_ticks = ticks.max(1);
        self
    }

    /// Overrides the latency objective.
    pub fn with_latency_objective(mut self, ticks: u64) -> Self {
        self.latency_objective_ticks = ticks;
        self
    }

    /// Overrides the error budget, in basis points.
    pub fn with_bad_budget_bps(mut self, bps: u32) -> Self {
        self.bad_budget_bps = bps.min(10_000);
        self
    }
}

/// An SLO state transition the monitor detected this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloTransition {
    /// Healthy → breached.
    Breached {
        /// Completions inside the window.
        window_jobs: u64,
        /// Bad completions inside the window.
        bad_jobs: u64,
        /// Bad rate over the window, in basis points.
        bad_bps: u32,
    },
    /// Breached → healthy.
    Recovered {
        /// Completions inside the window.
        window_jobs: u64,
        /// Bad rate over the window, in basis points.
        bad_bps: u32,
    },
}

/// One tenant's sliding-window SLO monitor.
#[derive(Debug, Clone, Default)]
pub struct SloMonitor {
    /// `(completion tick, was bad)` for completions still in the window.
    window: VecDeque<(u64, bool)>,
    /// Bad completions currently in the window (cached count).
    window_bad: u64,
    /// True while the objective is breached.
    breached: bool,
    /// Healthy→breached transitions, cumulative.
    breaches: u64,
    /// Bad completions, cumulative over the whole run.
    bad_total: u64,
    /// Completions, cumulative over the whole run.
    completions_total: u64,
    /// Worst window bad rate ever observed, in basis points.
    burn_max_bps: u32,
}

impl SloMonitor {
    /// A fresh, healthy monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completion. `bad` is decided by the caller against the
    /// policy (degraded, or over the latency objective).
    pub fn record(&mut self, tick: u64, bad: bool) {
        self.window.push_back((tick, bad));
        self.window_bad += u64::from(bad);
        self.completions_total += 1;
        self.bad_total += u64::from(bad);
    }

    /// Ages out expired completions and re-judges the window at `tick`,
    /// returning a transition when the healthy/breached state flipped.
    /// Call once per tick — recovery can happen on quiet ticks purely by
    /// bad completions aging out.
    pub fn evaluate(&mut self, tick: u64, policy: &SloPolicy) -> Option<SloTransition> {
        while let Some((t, bad)) = self.window.front().copied() {
            if t + policy.window_ticks > tick {
                break;
            }
            self.window.pop_front();
            self.window_bad -= u64::from(bad);
        }
        let window_jobs = self.window.len() as u64;
        let bad_bps = (self.window_bad * 10_000)
            .checked_div(window_jobs)
            .unwrap_or(0) as u32;
        self.burn_max_bps = self.burn_max_bps.max(bad_bps);
        let over = window_jobs >= policy.min_samples && bad_bps > policy.bad_budget_bps;
        match (self.breached, over) {
            (false, true) => {
                self.breached = true;
                self.breaches += 1;
                Some(SloTransition::Breached {
                    window_jobs,
                    bad_jobs: self.window_bad,
                    bad_bps,
                })
            }
            (true, false) => {
                self.breached = false;
                Some(SloTransition::Recovered {
                    window_jobs,
                    bad_bps,
                })
            }
            _ => None,
        }
    }

    /// True while the objective is breached.
    pub fn breached(&self) -> bool {
        self.breached
    }

    /// Healthy→breached transitions so far.
    pub fn breaches(&self) -> u64 {
        self.breaches
    }

    /// Bad completions over the whole run.
    pub fn bad_total(&self) -> u64 {
        self.bad_total
    }

    /// Completions over the whole run.
    pub fn completions_total(&self) -> u64 {
        self.completions_total
    }

    /// Worst window bad rate ever observed, in basis points.
    pub fn burn_max_bps(&self) -> u32 {
        self.burn_max_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> SloPolicy {
        SloPolicy::default_on()
            .with_window_ticks(10)
            .with_bad_budget_bps(2_500)
    }

    #[test]
    fn breach_needs_min_samples() {
        let p = policy();
        let mut m = SloMonitor::new();
        m.record(0, true);
        assert_eq!(m.evaluate(0, &p), None, "1 of 1 bad, but below min_samples");
        m.record(1, true);
        m.record(1, false);
        m.record(2, false);
        let t = m.evaluate(2, &p).expect("4 samples, 50% > 25% budget");
        assert_eq!(
            t,
            SloTransition::Breached {
                window_jobs: 4,
                bad_jobs: 2,
                bad_bps: 5_000,
            }
        );
        assert!(m.breached());
        assert_eq!(m.breaches(), 1);
        // Still over budget: no duplicate event.
        assert_eq!(m.evaluate(3, &p), None);
    }

    #[test]
    fn recovery_happens_by_aging_out_on_quiet_ticks() {
        let p = policy();
        let mut m = SloMonitor::new();
        for i in 0..4 {
            m.record(0, i < 2);
        }
        assert!(matches!(
            m.evaluate(0, &p),
            Some(SloTransition::Breached { .. })
        ));
        // Nothing completes afterwards; at tick 10 the window empties.
        assert_eq!(m.evaluate(9, &p), None, "window still holds the bad jobs");
        let t = m.evaluate(10, &p).expect("window aged out");
        assert_eq!(
            t,
            SloTransition::Recovered {
                window_jobs: 0,
                bad_bps: 0,
            }
        );
        assert!(!m.breached());
        assert_eq!(m.breaches(), 1, "cumulative count survives recovery");
    }

    #[test]
    fn burn_tracking_is_cumulative_and_high_watermark() {
        let p = policy();
        let mut m = SloMonitor::new();
        for i in 0..4 {
            m.record(i, i == 0);
        }
        m.evaluate(3, &p);
        assert_eq!(m.burn_max_bps(), 2_500);
        assert_eq!(m.bad_total(), 1);
        assert_eq!(m.completions_total(), 4);
        for i in 4..8 {
            m.record(i, true);
        }
        m.evaluate(7, &p);
        assert_eq!(m.burn_max_bps(), 6_250, "5 bad of 8 in window");
    }

    #[test]
    fn evaluation_is_deterministic_under_replay() {
        // The same completion stream evaluated twice produces the same
        // transition sequence — the property resume relies on.
        let p = policy();
        let drive = || {
            let mut m = SloMonitor::new();
            let mut transitions = Vec::new();
            for tick in 0..40u64 {
                if tick % 3 == 0 {
                    m.record(tick, tick % 6 == 0);
                }
                if let Some(t) = m.evaluate(tick, &p) {
                    transitions.push((tick, t));
                }
            }
            (transitions, m.breaches(), m.burn_max_bps())
        };
        assert_eq!(drive(), drive());
    }
}
