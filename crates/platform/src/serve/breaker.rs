//! Per-worker circuit breakers: quarantine workers on failure streaks,
//! probe them half-open after a seeded cooldown.
//!
//! The state machine is the classic three-state breaker on the service's
//! logical clock:
//!
//! ```text
//! Closed { streak } --streak hits threshold--> Open { until }
//! Open { until }    --tick reaches until-----> HalfOpen   (one probe)
//! HalfOpen          --probe succeeds---------> Closed { 0 }
//! HalfOpen          --probe fails------------> Open { until' }
//! ```
//!
//! Every transition is a pure function of `(state, outcome, tick)` plus a
//! seeded cooldown jitter, so breaker behaviour is deterministic under a
//! fixed seed — and a zero-rate fault plan, which never produces a
//! failure, leaves every breaker in `Closed { 0 }` forever: runs with the
//! breaker layer enabled are byte-identical to runs without it.

use crate::fault::mix;
use serde::{Deserialize, Serialize};

/// Breaker tuning for a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerPolicy {
    /// Master switch. Disabled breakers never trip and always admit.
    pub enabled: bool,
    /// Consecutive failures that open the breaker (minimum 1).
    pub trip_threshold: u32,
    /// Base quarantine length, in service ticks.
    pub cooldown_base: u64,
    /// Extra quarantine ticks drawn from the seeded jitter stream, in
    /// `[0, cooldown_jitter]`. Jitter keeps a correlated failure burst
    /// from synchronizing every breaker's half-open probe onto one tick.
    pub cooldown_jitter: u64,
}

impl BreakerPolicy {
    /// The default quarantine posture: trip after 3 consecutive failures,
    /// cool down 4–8 ticks.
    pub fn default_on() -> Self {
        BreakerPolicy {
            enabled: true,
            trip_threshold: 3,
            cooldown_base: 4,
            cooldown_jitter: 4,
        }
    }

    /// No breakers at all: never trips, always admits.
    pub fn disabled() -> Self {
        BreakerPolicy {
            enabled: false,
            trip_threshold: u32::MAX,
            cooldown_base: 0,
            cooldown_jitter: 0,
        }
    }

    /// Sets the trip threshold.
    pub fn with_trip_threshold(mut self, threshold: u32) -> Self {
        self.trip_threshold = threshold.max(1);
        self
    }

    /// Sets the cooldown window.
    pub fn with_cooldown(mut self, base: u64, jitter: u64) -> Self {
        self.cooldown_base = base;
        self.cooldown_jitter = jitter;
        self
    }

    /// The seeded cooldown for a worker's `trips`-th trip:
    /// `base + mix(seed, worker, trips) % (jitter + 1)`.
    pub fn cooldown(&self, seed: u64, worker: u64, trips: u64) -> u64 {
        if self.cooldown_jitter == 0 {
            return self.cooldown_base;
        }
        let draw = mix(seed ^ worker.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ trips.rotate_left(17));
        self.cooldown_base + draw % (self.cooldown_jitter + 1)
    }
}

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy; `streak` consecutive failures so far.
    Closed {
        /// Consecutive failures recorded without an intervening success.
        streak: u32,
    },
    /// Quarantined until the logical clock reaches `until`.
    Open {
        /// First tick at which a half-open probe is allowed.
        until: u64,
    },
    /// Cooldown elapsed; the next assignment is the probe.
    HalfOpen,
}

/// What [`CircuitBreaker::on_failure`] reports back, so the caller can
/// emit the matching events exactly once per transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureVerdict {
    /// `Some(cooldown)` when this failure tripped the breaker open.
    pub tripped: Option<u64>,
    /// True when the failure was a half-open probe (the quarantine
    /// re-opened rather than opened).
    pub was_probe: bool,
}

/// One worker's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitBreaker {
    state: BreakerState,
    trips: u64,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new()
    }
}

impl CircuitBreaker {
    /// A closed breaker with no failure history.
    pub fn new() -> Self {
        CircuitBreaker {
            state: BreakerState::Closed { streak: 0 },
            trips: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times this breaker has opened.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// True when the worker may be assigned work at `tick`. An expired
    /// quarantine transitions to [`BreakerState::HalfOpen`] here, so the
    /// assignment this admits is the probe.
    pub fn admits(&mut self, tick: u64) -> bool {
        match self.state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => true,
            BreakerState::Open { until } if tick >= until => {
                self.state = BreakerState::HalfOpen;
                true
            }
            BreakerState::Open { .. } => false,
        }
    }

    /// Like [`admits`](CircuitBreaker::admits) but without the half-open
    /// transition — for counting healthy workers without spending probes.
    pub fn would_admit(&self, tick: u64) -> bool {
        match self.state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => true,
            BreakerState::Open { until } => tick >= until,
        }
    }

    /// Records a usable judgment. Returns true when this closed a
    /// half-open probe (the worker recovered).
    pub fn on_success(&mut self) -> bool {
        let recovered = matches!(self.state, BreakerState::HalfOpen);
        self.state = BreakerState::Closed { streak: 0 };
        recovered
    }

    /// Records a failed judgment (abandonment, no-answer, or timeout) at
    /// `tick` under `policy`, with the quarantine jitter drawn from
    /// `(seed, worker)`.
    pub fn on_failure(
        &mut self,
        tick: u64,
        policy: &BreakerPolicy,
        seed: u64,
        worker: u64,
    ) -> FailureVerdict {
        if !policy.enabled {
            return FailureVerdict {
                tripped: None,
                was_probe: false,
            };
        }
        match self.state {
            BreakerState::Closed { streak } => {
                let streak = streak + 1;
                if streak >= policy.trip_threshold {
                    let cooldown = self.trip(tick, policy, seed, worker);
                    FailureVerdict {
                        tripped: Some(cooldown),
                        was_probe: false,
                    }
                } else {
                    self.state = BreakerState::Closed { streak };
                    FailureVerdict {
                        tripped: None,
                        was_probe: false,
                    }
                }
            }
            BreakerState::HalfOpen => {
                let cooldown = self.trip(tick, policy, seed, worker);
                FailureVerdict {
                    tripped: Some(cooldown),
                    was_probe: true,
                }
            }
            // A quarantined worker is never assigned work; a failure
            // reaching an open breaker is a caller bug, tolerated as a
            // no-op rather than a panic.
            BreakerState::Open { .. } => FailureVerdict {
                tripped: None,
                was_probe: false,
            },
        }
    }

    fn trip(&mut self, tick: u64, policy: &BreakerPolicy, seed: u64, worker: u64) -> u64 {
        self.trips += 1;
        let cooldown = policy.cooldown(seed, worker, self.trips).max(1);
        self.state = BreakerState::Open {
            until: tick.saturating_add(cooldown),
        };
        cooldown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fail(b: &mut CircuitBreaker, tick: u64, policy: &BreakerPolicy) -> FailureVerdict {
        b.on_failure(tick, policy, 7, 0)
    }

    #[test]
    fn full_cycle_closed_open_halfopen_closed() {
        let policy = BreakerPolicy::default_on()
            .with_trip_threshold(2)
            .with_cooldown(3, 0);
        let mut b = CircuitBreaker::new();
        assert!(fail(&mut b, 0, &policy).tripped.is_none());
        let verdict = fail(&mut b, 0, &policy);
        assert_eq!(verdict.tripped, Some(3));
        assert_eq!(b.state(), BreakerState::Open { until: 3 });
        assert!(!b.admits(2), "still quarantined");
        assert!(b.admits(3), "cooldown elapsed: probe allowed");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.on_success(), "probe success reports recovery");
        assert_eq!(b.state(), BreakerState::Closed { streak: 0 });
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn failed_probe_reopens() {
        let policy = BreakerPolicy::default_on()
            .with_trip_threshold(1)
            .with_cooldown(2, 0);
        let mut b = CircuitBreaker::new();
        assert!(fail(&mut b, 0, &policy).tripped.is_some());
        assert!(b.admits(2));
        let verdict = fail(&mut b, 2, &policy);
        assert!(verdict.was_probe);
        assert_eq!(verdict.tripped, Some(2));
        assert_eq!(b.state(), BreakerState::Open { until: 4 });
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn success_resets_the_streak() {
        let policy = BreakerPolicy::default_on().with_trip_threshold(3);
        let mut b = CircuitBreaker::new();
        fail(&mut b, 0, &policy);
        fail(&mut b, 0, &policy);
        assert!(!b.on_success(), "a closed success is not a recovery");
        fail(&mut b, 0, &policy);
        fail(&mut b, 0, &policy);
        assert_eq!(
            b.state(),
            BreakerState::Closed { streak: 2 },
            "streak restarted after the success"
        );
    }

    #[test]
    fn disabled_policy_never_trips() {
        let policy = BreakerPolicy::disabled();
        let mut b = CircuitBreaker::new();
        for _ in 0..1_000 {
            assert!(fail(&mut b, 0, &policy).tripped.is_none());
        }
        assert_eq!(b.state(), BreakerState::Closed { streak: 0 });
        assert!(b.admits(0));
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn cooldown_jitter_is_seeded_and_bounded() {
        let policy = BreakerPolicy::default_on().with_cooldown(4, 4);
        let mut seen = std::collections::HashSet::new();
        for worker in 0..64u64 {
            let c = policy.cooldown(11, worker, 1);
            assert!((4..=8).contains(&c), "cooldown {c} out of range");
            seen.insert(c);
            assert_eq!(c, policy.cooldown(11, worker, 1), "deterministic");
        }
        assert!(seen.len() > 1, "jitter must actually vary");
    }

    #[test]
    fn would_admit_does_not_spend_the_probe() {
        let policy = BreakerPolicy::default_on()
            .with_trip_threshold(1)
            .with_cooldown(1, 0);
        let mut b = CircuitBreaker::new();
        fail(&mut b, 0, &policy);
        assert!(b.would_admit(1));
        assert!(
            matches!(b.state(), BreakerState::Open { .. }),
            "read-only check must not transition to half-open"
        );
    }
}
