//! The crowd-serve service loop: admission, dispatch, execution,
//! journaling, and reporting.
//!
//! [`CrowdServe`] multiplexes concurrent max-finding jobs over sharded
//! worker pools on a logical clock. Each tick:
//!
//! 1. **Deadline sweep** — jobs past their deadline force-complete with
//!    [`DegradedReason::DeadlineLapsed`].
//! 2. **Admission** — the bounded FIFO queue drains head-of-line while
//!    tenant token buckets can fund each job's worst-case reservation.
//! 3. **Dispatch** — deficit-round-robin over active jobs hands pairs to
//!    shards, gated by per-shard windows (backpressure) and per-job
//!    reservations (budget).
//! 4. **WAL** — the tick's dispatch list is journaled and flushed
//!    *before* execution, so a crash can lose at most one tick of work.
//! 5. **Execution** — each dispatched pair runs on its shard; answers are
//!    charged to the owning tenant.
//! 6. **Completion** — finished jobs refund unused reservation and emit
//!    [`Event::JobCompleted`]; the tick's outcome record is journaled at
//!    the checkpoint cadence.
//!
//! Every decision is a pure function of `(config, arrival plan, seed,
//! logical clock)`: reruns are byte-identical, and
//! [`CrowdServe::resume`] replays a crashed run's journal as an audit
//! trail while rebuilding the exact same final state.

use crate::fault::mix;
use crate::journal::{fnv1a64, CheckpointPolicy, Journal, JOURNAL_VERSION};
use crate::retry::RetryPolicy;
use crate::serve::arrival::ArrivalPlan;
use crate::serve::breaker::BreakerPolicy;
use crate::serve::cache::{CachePolicy, CacheStats, JudgmentCache};
use crate::serve::job::{ActiveJob, JobId, JobSpec};
use crate::serve::shard::{ShardSpec, WorkerShard, SHARD_TIE_POLICY};
use crate::serve::slo::{SloMonitor, SloPolicy, SloTransition};
use crate::serve::tenant::{TenantId, TenantPolicy, TokenBucket};
use crowd_core::element::ElementId;
use crowd_core::model::WorkerClass;
use crowd_core::trace::{DegradedReason, FaultKind};
use crowd_obs::{
    counter_add, emit, emit_span, gauge_set, names, observe, stage_label, Event, Stage,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Full configuration of a [`CrowdServe`] instance. Serialized into the
/// journal header as a digest so resume refuses mismatched configs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// The worker shards jobs dispatch onto.
    pub shards: Vec<ShardSpec>,
    /// The tenants allowed to submit, with their token buckets.
    pub tenants: Vec<TenantPolicy>,
    /// Bound on the admission queue; submissions beyond it are shed.
    pub queue_cap: usize,
    /// Deficit-round-robin quantum, in judgments per job per tick.
    pub drr_quantum: u64,
    /// Retry allowance per pair (faults re-assign to fresh workers).
    pub retry: RetryPolicy,
    /// Circuit-breaker posture for every shard.
    pub breaker: BreakerPolicy,
    /// How often completed-tick records are made durable.
    pub checkpoint: CheckpointPolicy,
    /// Phase-1 survivor target (jobs this small skip straight to Phase 2).
    pub finalists: usize,
    /// Vote boost when the expert phase falls back to the crowd.
    pub fallback_votes: u32,
    /// Percentage of a job's worst-case cost reserved at admission.
    /// `100` makes the budget gate unreachable (full prepayment);
    /// below 100 admits optimistically and jobs that outrun their
    /// reservation force-complete with [`DegradedReason::BudgetExhausted`].
    pub reserve_factor_percent: u64,
    /// The cross-job judgment cache posture: when a cached verdict may
    /// substitute for fresh judgments, and how much the store retains.
    pub cache: CachePolicy,
    /// Per-tenant SLO: sliding window, latency objective, error budget.
    pub slo: SloPolicy,
}

impl ServeConfig {
    /// A small two-shard (crowd + expert) service with one generous
    /// tenant — the starting point tests and experiments tune from.
    pub fn basic() -> Self {
        ServeConfig {
            shards: vec![
                ShardSpec::honest(WorkerClass::Naive, 16, 48),
                ShardSpec::honest(WorkerClass::Expert, 4, 12),
            ],
            tenants: vec![TenantPolicy::new(TenantId(0), 100_000, 1_000)],
            queue_cap: 32,
            drr_quantum: 6,
            retry: RetryPolicy::paper_default(),
            breaker: BreakerPolicy::default_on(),
            checkpoint: CheckpointPolicy::every_batch(),
            finalists: 2,
            fallback_votes: 5,
            reserve_factor_percent: 100,
            cache: CachePolicy::default_on(),
            slo: SloPolicy::default_on(),
        }
    }

    /// Replaces the tenant set.
    pub fn with_tenants(mut self, tenants: Vec<TenantPolicy>) -> Self {
        self.tenants = tenants;
        self
    }

    /// Replaces the shard set.
    pub fn with_shards(mut self, shards: Vec<ShardSpec>) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the admission-queue bound.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Sets the breaker posture.
    pub fn with_breaker(mut self, breaker: BreakerPolicy) -> Self {
        self.breaker = breaker;
        self
    }

    /// Sets the admission reservation factor (clamped to ≥ 1).
    pub fn with_reserve_factor_percent(mut self, percent: u64) -> Self {
        self.reserve_factor_percent = percent.max(1);
        self
    }

    /// Sets the judgment-cache posture.
    pub fn with_cache(mut self, cache: CachePolicy) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the per-tenant SLO posture.
    pub fn with_slo(mut self, slo: SloPolicy) -> Self {
        self.slo = slo;
        self
    }

    /// The config digest stamped into the journal header.
    pub fn digest(&self) -> u64 {
        let json = serde_json::to_string(self).expect("config serializes");
        fnv1a64(json.as_bytes())
    }
}

/// How a submission was received.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted immediately; the tournament starts this tick.
    Admitted(JobId),
    /// Parked in the bounded admission queue.
    Queued(JobId),
    /// Shed. `retry_after` estimates the ticks until the tenant's bucket
    /// could fund the job (`u64::MAX`: the job can never fit the budget).
    Rejected {
        /// The id assigned to the shed submission.
        job: JobId,
        /// Earliest retry distance, in ticks.
        retry_after: u64,
    },
}

/// Why a resume attempt refused a journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The journal has no intact `Started` header.
    MissingHeader,
    /// The journal was written by a different code version.
    VersionMismatch {
        /// Version found in the header.
        journal: u32,
        /// Version this code writes.
        code: u32,
    },
    /// The journal's config digest does not match the offered config.
    ConfigMismatch,
    /// The journal's seed does not match the offered seed.
    SeedMismatch {
        /// Seed found in the header.
        journal: u64,
        /// Seed offered to resume.
        code: u64,
    },
    /// Replay recomputed a different outcome than the journal recorded —
    /// the journal lies or the environment changed.
    Diverged {
        /// First tick whose recomputed record mismatched.
        tick: u64,
    },
}

/// Typed service errors. The service degrades rather than panics; these
/// are the conditions it cannot degrade through.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A submission named a tenant the service has no bucket for.
    UnknownTenant(TenantId),
    /// A submission carried no elements.
    EmptyCatalog,
    /// The config has no shards to dispatch onto.
    NoShards,
    /// The config lists the same tenant twice.
    DuplicateTenant(TenantId),
    /// A chaos kill fired; the durable journal is the recovery state.
    Crashed,
    /// A resume attempt failed validation.
    Resume(ResumeError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            ServeError::EmptyCatalog => write!(f, "job carries no elements"),
            ServeError::NoShards => write!(f, "service configured with no shards"),
            ServeError::DuplicateTenant(t) => write!(f, "tenant {t} configured twice"),
            ServeError::Crashed => write!(f, "service crashed (chaos kill); journal is durable"),
            ServeError::Resume(e) => write!(f, "resume refused: {e:?}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One dispatched pair, as journaled in the tick's WAL record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DispatchRecord {
    /// The job the pair belongs to.
    pub job: u64,
    /// The shard it ran on.
    pub shard: u32,
    /// First element.
    pub k: u32,
    /// Second element.
    pub j: u32,
    /// Votes requested.
    pub votes: u32,
}

/// One pair served from the judgment cache instead of a shard, as
/// journaled in the tick's `TickCached` audit record. Cached pairs
/// consume no window slot and charge no tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheHitRecord {
    /// The job the pair belongs to.
    pub job: u64,
    /// First element.
    pub k: u32,
    /// Second element.
    pub j: u32,
    /// Votes the cached verdict substituted for (the saving).
    pub votes: u32,
    /// The element the cached verdict advanced.
    pub winner: u32,
}

/// A finished job, as reported and journaled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedJob {
    /// The job id.
    pub job: JobId,
    /// The owning tenant.
    pub tenant: TenantId,
    /// The winner the service returned.
    pub winner: ElementId,
    /// `None` for a full-protocol result.
    pub degraded: Option<DegradedReason>,
    /// Comparisons charged to the tenant.
    pub comparisons: u64,
    /// Tick the job was submitted.
    pub submitted: u64,
    /// Tick the job completed.
    pub completed: u64,
}

impl CompletedJob {
    /// Submission-to-completion latency in ticks.
    pub fn latency_ticks(&self) -> u64 {
        self.completed.saturating_sub(self.submitted)
    }
}

/// The service journal's record vocabulary, framed through
/// [`Journal::append_json`] so it shares the WAL torn-tail story.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum ServeRecord {
    /// The journal header.
    Started {
        version: u32,
        seed: u64,
        config_digest: u64,
    },
    /// The write-ahead half: what this tick is about to execute.
    TickScheduled {
        tick: u64,
        dispatches: Vec<DispatchRecord>,
    },
    /// Pairs this tick resolved from the judgment cache — an audit
    /// record (cache state is recomputed on replay, never read back),
    /// written only on ticks with at least one hit so cache-off and
    /// zero-overlap runs journal identical bytes.
    TickCached {
        tick: u64,
        hits: Vec<CacheHitRecord>,
    },
    /// The tick's outcome: shard stream positions, answers purchased,
    /// cumulative per-tenant charges, and completed jobs.
    TickCompleted {
        tick: u64,
        shard_seqs: Vec<u64>,
        answers: u64,
        charged: Vec<(u32, u64)>,
        completed: Vec<CompletedJob>,
    },
}

/// Deterministic kill points for chaos tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeKill {
    /// Die before tick `t` does anything.
    BeforeTick(u64),
    /// Die after tick `t`'s WAL flush, before execution — the dangling-
    /// schedule case.
    MidTick(u64),
    /// Die mid-write of tick `t`'s completion record: half the frame
    /// reaches durable storage (a torn tail).
    TornCompleted(u64),
}

/// Per-tenant accounting, aggregated into the final report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// The tenant.
    pub tenant: TenantId,
    /// Jobs submitted (admitted + queued + shed).
    pub offered: u64,
    /// Jobs admitted into execution.
    pub admitted: u64,
    /// Jobs shed by admission control.
    pub shed: u64,
    /// Jobs completed without degradation.
    pub completed_ok: u64,
    /// Jobs completed degraded, total.
    pub degraded: u64,
    /// Degradations by deadline lapse.
    pub degraded_deadline: u64,
    /// Degradations by expert exhaustion (crowd fallback).
    pub degraded_expert: u64,
    /// Degradations by reservation exhaustion.
    pub degraded_budget: u64,
    /// Degradations by dead-lettered pairs.
    pub degraded_dead_letters: u64,
    /// Comparisons charged to the tenant.
    pub comparisons: u64,
    /// Tokens the tenant's bucket ever dispensed.
    pub tokens_granted: u64,
    /// Tokens returned unused.
    pub tokens_refunded: u64,
    /// p99 completed-job latency, in ticks (0 when nothing completed).
    pub p99_latency_ticks: u64,
    /// Worst completed-job latency, in ticks.
    pub max_latency_ticks: u64,
    /// Healthy→breached SLO transitions over the run.
    pub slo_breaches: u64,
    /// Completions that violated the SLO (degraded, or over the latency
    /// objective), cumulative.
    pub slo_bad_jobs: u64,
    /// Worst sliding-window bad-completion rate seen, in basis points —
    /// the tenant's error-budget burn high watermark.
    pub slo_burn_max_bps: u32,
    /// True when the run ended with the SLO still breached.
    pub slo_breached_at_end: bool,
}

/// The final run report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Ticks the service ran.
    pub ticks: u64,
    /// Per-tenant accounting, sorted by tenant id.
    pub tenants: Vec<TenantReport>,
    /// Every completed job, in completion order.
    pub jobs: Vec<CompletedJob>,
    /// Circuit-breaker trips across all shards.
    pub breaker_trips: u64,
    /// Dead-lettered pairs across all jobs.
    pub dead_letters: u64,
    /// Jobs shed across all tenants.
    pub shed: u64,
    /// Comparisons charged across all tenants.
    pub comparisons: u64,
    /// Pairs served from the judgment cache instead of a shard.
    ///
    /// Only *hit-side* cache fields live in the report: zero at zero
    /// catalog overlap, so a cache-on zero-overlap report compares equal
    /// to a cache-off one (misses and evictions stay in
    /// [`CrowdServe::cache_stats`] and the obs counters).
    pub cache_hits: u64,
    /// Comparisons (votes) those hits avoided buying.
    pub cache_saved_comparisons: u64,
}

/// Replay-audit state carried by a resumed service.
#[derive(Debug)]
struct ReplayAudit {
    /// Journaled `TickCompleted` JSON by tick, from the crashed run.
    expected: BTreeMap<u64, String>,
    replayed_ticks: u64,
    replayed_comparisons: u64,
}

/// Which shard a dispatch attempt landed on, or why none could take it.
enum ShardPick {
    Ready(usize),
    NoHealthy,
    NoCapacity,
}

/// The overload-robust multi-tenant job service.
#[derive(Debug)]
pub struct CrowdServe {
    config: ServeConfig,
    seed: u64,
    tick: u64,
    next_job: u64,
    shards: Vec<WorkerShard>,
    cache: JudgmentCache,
    buckets: BTreeMap<TenantId, TokenBucket>,
    slo: BTreeMap<TenantId, SloMonitor>,
    queue: VecDeque<(JobId, JobSpec, u64)>,
    active: BTreeMap<JobId, ActiveJob>,
    drr: VecDeque<JobId>,
    journal: Journal,
    unflushed: u64,
    completed: Vec<CompletedJob>,
    charged_total: BTreeMap<TenantId, u64>,
    offered: BTreeMap<TenantId, u64>,
    shed_count: BTreeMap<TenantId, u64>,
    admitted_count: BTreeMap<TenantId, u64>,
    dead_letters: u64,
    queue_depth_max: usize,
    chaos: Option<ServeKill>,
    crashed: bool,
    replay: Option<ReplayAudit>,
}

impl CrowdServe {
    /// Builds a service at tick 0 and journals the `Started` header.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoShards`] on an empty shard set,
    /// [`ServeError::DuplicateTenant`] when a tenant is configured twice.
    pub fn new(config: ServeConfig, seed: u64) -> Result<Self, ServeError> {
        if config.shards.is_empty() {
            return Err(ServeError::NoShards);
        }
        let mut buckets = BTreeMap::new();
        let mut slo = BTreeMap::new();
        for policy in &config.tenants {
            if buckets
                .insert(policy.tenant, TokenBucket::new(*policy))
                .is_some()
            {
                return Err(ServeError::DuplicateTenant(policy.tenant));
            }
            slo.insert(policy.tenant, SloMonitor::new());
        }
        let shards = config
            .shards
            .iter()
            .enumerate()
            .map(|(i, spec)| WorkerShard::new(i as u32, *spec, mix(seed ^ 0x5E)))
            .collect();
        let mut journal = Journal::new();
        let header = ServeRecord::Started {
            version: JOURNAL_VERSION,
            seed,
            config_digest: config.digest(),
        };
        journal.append_json(&serde_json::to_string(&header).expect("record serializes"));
        journal.flush();
        let cache = JudgmentCache::new(config.cache);
        Ok(CrowdServe {
            config,
            seed,
            tick: 0,
            next_job: 0,
            shards,
            cache,
            buckets,
            slo,
            queue: VecDeque::new(),
            active: BTreeMap::new(),
            drr: VecDeque::new(),
            journal,
            unflushed: 0,
            completed: Vec::new(),
            charged_total: BTreeMap::new(),
            offered: BTreeMap::new(),
            shed_count: BTreeMap::new(),
            admitted_count: BTreeMap::new(),
            dead_letters: 0,
            queue_depth_max: 0,
            chaos: None,
            crashed: false,
            replay: None,
        })
    }

    /// Arms a deterministic kill point.
    pub fn with_chaos(mut self, kill: ServeKill) -> Self {
        self.chaos = Some(kill);
        self
    }

    /// The current logical clock.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The seed the service was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The service journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// True once a chaos kill fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// The judgment cache's full counter set — including the miss and
    /// eviction counters deliberately kept out of [`ServeReport`].
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// A tenant's worst-case reservation for `spec` under this config.
    fn reservation(&self, spec: &JobSpec) -> u64 {
        let worst = spec.worst_cost(self.config.fallback_votes, self.config.retry.max_retries);
        worst.saturating_mul(self.config.reserve_factor_percent) / 100
    }

    /// Submits a job at the current tick.
    ///
    /// Shed submissions leave **no residue**: no journal bytes, no bucket
    /// movement, no active state — only the [`Event::JobShed`] event and
    /// shed counter, so a retried submission replays identically.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] / [`ServeError::EmptyCatalog`] on
    /// malformed submissions, [`ServeError::Crashed`] after a chaos kill.
    pub fn submit(&mut self, spec: JobSpec) -> Result<Admission, ServeError> {
        if self.crashed {
            return Err(ServeError::Crashed);
        }
        if spec.values.is_empty() {
            return Err(ServeError::EmptyCatalog);
        }
        if !self.buckets.contains_key(&spec.tenant) {
            return Err(ServeError::UnknownTenant(spec.tenant));
        }
        let job = JobId(self.next_job);
        self.next_job += 1;
        let tenant = spec.tenant;
        *self.offered.entry(tenant).or_insert(0) += 1;
        let reserved = self.reservation(&spec);
        let tick = self.tick;
        let bucket = self.buckets.get_mut(&tenant).expect("tenant checked");

        if reserved > bucket.policy().capacity {
            return Ok(self.shed(job, tenant, u64::MAX));
        }
        if self.queue.is_empty() && bucket.try_reserve(reserved, tick) {
            self.admit(job, spec, tick, reserved, 0);
            return Ok(Admission::Admitted(job));
        }
        if self.queue.len() < self.config.queue_cap {
            self.queue.push_back((job, spec, tick));
            self.queue_depth_max = self.queue_depth_max.max(self.queue.len());
            gauge_set(names::SERVE_QUEUE_DEPTH_MAX, &[], self.queue.len() as i64);
            return Ok(Admission::Queued(job));
        }
        let retry_after = bucket.ticks_until(reserved, tick).max(1);
        Ok(self.shed(job, tenant, retry_after))
    }

    fn shed(&mut self, job: JobId, tenant: TenantId, retry_after: u64) -> Admission {
        *self.shed_count.entry(tenant).or_insert(0) += 1;
        emit(Event::JobShed {
            tenant: tenant.0,
            job: job.0,
            retry_after,
        });
        counter_add(
            names::SERVE_SHED_TOTAL,
            &[("tenant", &tenant.to_string())],
            1,
        );
        Admission::Rejected { job, retry_after }
    }

    fn admit(&mut self, job: JobId, spec: JobSpec, submitted: u64, reserved: u64, waited: u64) {
        let tenant = spec.tenant;
        *self.admitted_count.entry(tenant).or_insert(0) += 1;
        emit(Event::JobAdmitted {
            tenant: tenant.0,
            job: job.0,
            waited_ticks: waited,
        });
        let active = ActiveJob::new(
            job,
            spec,
            submitted,
            self.tick,
            reserved,
            self.config.finalists,
            self.config.fallback_votes,
        );
        self.active.insert(job, active);
        self.drr.push_back(job);
    }

    /// Advances the service one tick.
    ///
    /// # Errors
    ///
    /// [`ServeError::Crashed`] when a chaos kill fires (now or earlier).
    pub fn step(&mut self) -> Result<(), ServeError> {
        if self.crashed {
            return Err(ServeError::Crashed);
        }
        let tick = self.tick;
        if self.chaos == Some(ServeKill::BeforeTick(tick)) {
            self.crashed = true;
            return Err(ServeError::Crashed);
        }

        // 1. Deadline sweep. Jobs force-finish between rounds only: a
        // pair dispatched in an earlier tick has already resolved (ticks
        // execute synchronously), so no outcome can land after Done.
        for job in self.active.values_mut() {
            if !job.is_done() && tick >= job.deadline {
                job.force_finish(DegradedReason::DeadlineLapsed);
            }
        }

        // 2. Head-of-line admission: drain the queue while buckets allow.
        while let Some((job, spec, submitted)) = self.queue.front().cloned() {
            let reserved = self.reservation(&spec);
            let bucket = self
                .buckets
                .get_mut(&spec.tenant)
                .expect("tenant checked at submit");
            if !bucket.try_reserve(reserved, tick) {
                break;
            }
            self.queue.pop_front();
            self.admit(job, spec, submitted, reserved, tick - submitted);
        }

        // 3. Dispatch. Cache lookups happen inside the dispatch pass,
        // before any shard is picked: a hit resolves its pair on the spot
        // and never consumes a window slot or a token.
        for shard in &mut self.shards {
            shard.begin_tick();
        }
        let cache_before = self.cache.stats();
        let (dispatches, cache_hits, quarantined) = self.dispatch_tick();

        // 4. WAL: the dispatch list is durable before any worker is
        // asked. Cache hits are journaled alongside it (audit only: a
        // replay recomputes them; it never reads them back) — but only on
        // ticks that had one, so a run that never hits journals exactly
        // the bytes a cache-off run does.
        let wal_appended = !cache_hits.is_empty() || !dispatches.is_empty();
        if !cache_hits.is_empty() {
            let record = ServeRecord::TickCached {
                tick,
                hits: cache_hits.clone(),
            };
            self.journal
                .append_json(&serde_json::to_string(&record).expect("record serializes"));
        }
        if !dispatches.is_empty() {
            let record = ServeRecord::TickScheduled {
                tick,
                dispatches: dispatches.clone(),
            };
            self.journal
                .append_json(&serde_json::to_string(&record).expect("record serializes"));
        }
        if wal_appended {
            self.journal.flush();
            self.unflushed = 0;
            if self.chaos == Some(ServeKill::MidTick(tick)) {
                self.crashed = true;
                return Err(ServeError::Crashed);
            }
        }

        // 5. Execute, in dispatch order. `executed` tracks, per job, how
        // many pairs ran and whether any needed the retry layer — the
        // facts span attribution classifies the tick by.
        let mut tick_answers = 0u64;
        let mut executed: BTreeMap<JobId, bool> = BTreeMap::new();
        for d in &dispatches {
            let job = self
                .active
                .get_mut(&JobId(d.job))
                .expect("dispatched job is active");
            let (vk, vj) = (job.values[d.k as usize], job.values[d.j as usize]);
            let tenant = job.tenant;
            let shard = &mut self.shards[d.shard as usize];
            let out = shard.execute_pair(
                tick,
                ElementId(d.k),
                vk,
                ElementId(d.j),
                vj,
                d.votes,
                self.config.retry.max_retries,
                &self.config.breaker,
            );
            // A clean, fully-voted verdict becomes a cache asset for
            // every later job that compares the same two values.
            if out.dead.is_none() && out.answers >= d.votes {
                if let Some(w) = out.winner {
                    self.cache.insert(
                        vk,
                        vj,
                        self.shards[d.shard as usize].class(),
                        SHARD_TIE_POLICY,
                        w == ElementId(d.k),
                        d.votes,
                        tick,
                    );
                }
            }
            let job = self
                .active
                .get_mut(&JobId(d.job))
                .expect("dispatched job is active");
            job.charged += u64::from(out.answers);
            tick_answers += u64::from(out.answers);
            let retried = executed.entry(JobId(d.job)).or_insert(false);
            *retried |= out.dead.is_some() || out.attempts > d.votes;
            *self.charged_total.entry(tenant).or_insert(0) += u64::from(out.answers);
            counter_add(
                names::SERVE_COMPARISONS_TOTAL,
                &[("tenant", &tenant.to_string())],
                u64::from(out.answers),
            );
            if let Some(reason) = out.dead {
                self.dead_letters += 1;
                let class = self.shards[d.shard as usize].class();
                emit(Event::DeadLettered {
                    class,
                    attempts: out.attempts,
                    reason,
                });
                counter_add(
                    names::DEAD_LETTERS_TOTAL,
                    &[
                        ("class", crowd_obs::class_label(class)),
                        ("reason", crowd_obs::reason_label(reason)),
                    ],
                    1,
                );
            }
            self.active
                .get_mut(&JobId(d.job))
                .expect("dispatched job is active")
                .feed((ElementId(d.k), ElementId(d.j)), out.winner);
        }

        // Cache observability: one delta per tick keeps counter traffic
        // bounded, and guarding on nonzero deltas keeps a cache that
        // never moves invisible in the metrics exposition.
        let cache_after = self.cache.stats();
        let deltas = [
            (
                names::SERVE_CACHE_HITS_TOTAL,
                cache_after.hits - cache_before.hits,
            ),
            (
                names::SERVE_CACHE_MISSES_TOTAL,
                cache_after.misses - cache_before.misses,
            ),
            (
                names::SERVE_CACHE_EVICTIONS_TOTAL,
                cache_after.evictions - cache_before.evictions,
            ),
        ];
        for (name, delta) in deltas {
            if delta > 0 {
                counter_add(name, &[], delta);
            }
        }

        // 6. Completion: budget stalls finish degraded, done jobs leave.
        let mut completions = Vec::new();
        let done: Vec<JobId> = self
            .active
            .iter_mut()
            .filter_map(|(id, job)| {
                if job.budget_stalled && !job.is_done() {
                    job.force_finish(DegradedReason::BudgetExhausted);
                }
                job.is_done().then_some(*id)
            })
            .collect();
        for id in done {
            let job = self.active.remove(&id).expect("listed as done");
            self.drr.retain(|j| *j != id);
            let refund = job.reserved.saturating_sub(job.charged);
            self.buckets
                .get_mut(&job.tenant)
                .expect("tenant checked at submit")
                .refund(refund, tick);
            let winner = job.winner.expect("done jobs carry a winner");
            let record = CompletedJob {
                job: id,
                tenant: job.tenant,
                winner,
                degraded: job.degraded,
                comparisons: job.charged,
                submitted: job.submitted,
                completed: tick,
            };
            emit(Event::JobCompleted {
                tenant: job.tenant.0,
                job: id.0,
                latency_ticks: record.latency_ticks(),
                comparisons: job.charged,
                degraded: job.degraded,
            });
            let outcome = if job.degraded.is_some() {
                "degraded"
            } else {
                "ok"
            };
            counter_add(
                names::SERVE_JOBS_TOTAL,
                &[("tenant", &job.tenant.to_string()), ("outcome", outcome)],
                1,
            );
            observe(
                names::SERVE_JOB_LATENCY_TICKS,
                &[("tenant", &job.tenant.to_string())],
                record.latency_ticks(),
            );
            // Close the job's span tree. The accumulator recorded exactly
            // one stage per tick the job survived, so the spans partition
            // the latency — the accounting invariant `serve_trace` audits.
            let spans = job
                .stages
                .job_spans(job.tenant.0, id.0, job.submitted, job.admitted, tick);
            debug_assert_eq!(
                spans.iter().map(|s| s.ticks).sum::<u64>(),
                record.latency_ticks(),
                "stage spans must partition job {id} latency"
            );
            for span in &spans {
                emit_span(*span);
                if span.ticks > 0 {
                    observe(
                        names::SERVE_STAGE_TICKS,
                        &[
                            ("tenant", &job.tenant.to_string()),
                            ("stage", stage_label(span.stage)),
                        ],
                        span.ticks,
                    );
                }
            }
            if self.config.slo.enabled {
                let bad = record.degraded.is_some()
                    || record.latency_ticks() > self.config.slo.latency_objective_ticks;
                if let Some(monitor) = self.slo.get_mut(&job.tenant) {
                    monitor.record(tick, bad);
                }
            }
            self.completed.push(record.clone());
            completions.push(record);
        }

        // Span attribution: each surviving job charges this tick to
        // exactly one active stage. Jobs that completed above are gone —
        // their completion tick is, by definition, not part of their
        // latency. Priority: execution facts beat cache hits beat
        // quarantine stalls; a tick with none of those is dispatch wait
        // (deficit, window backpressure, or reservation gates).
        let cache_hit_jobs: BTreeSet<JobId> = cache_hits.iter().map(|h| JobId(h.job)).collect();
        for (id, job) in self.active.iter_mut() {
            let stage = match executed.get(id) {
                Some(true) => Stage::Retry,
                Some(false) => Stage::ShardExec,
                None if cache_hit_jobs.contains(id) => Stage::CacheLookup,
                None if quarantined.contains(id) => Stage::BreakerQuarantine,
                None => Stage::DispatchWait,
            };
            job.stages.record(stage, tick);
        }

        // SLO evaluation runs every tick — recovery can arrive on a
        // quiet tick purely by bad completions aging out of the window.
        if self.config.slo.enabled {
            for (tenant, monitor) in &mut self.slo {
                match monitor.evaluate(tick, &self.config.slo) {
                    Some(SloTransition::Breached {
                        window_jobs,
                        bad_jobs,
                        bad_bps,
                    }) => {
                        emit(Event::SloBreached {
                            tenant: tenant.0,
                            tick,
                            window_jobs,
                            bad_jobs,
                            bad_bps,
                        });
                        counter_add(
                            names::SERVE_SLO_BREACHES_TOTAL,
                            &[("tenant", &tenant.to_string())],
                            1,
                        );
                    }
                    Some(SloTransition::Recovered {
                        window_jobs,
                        bad_bps,
                    }) => {
                        emit(Event::SloRecovered {
                            tenant: tenant.0,
                            tick,
                            window_jobs,
                            bad_bps,
                        });
                    }
                    None => {}
                }
            }
        }

        // 7. Journal the tick outcome at the checkpoint cadence.
        if !dispatches.is_empty() || !completions.is_empty() {
            let record = ServeRecord::TickCompleted {
                tick,
                shard_seqs: self.shards.iter().map(|s| s.seq()).collect(),
                answers: tick_answers,
                charged: self.charged_total.iter().map(|(t, c)| (t.0, *c)).collect(),
                completed: completions,
            };
            let json = serde_json::to_string(&record).expect("record serializes");
            if let Some(audit) = &mut self.replay {
                if let Some(expected) = audit.expected.get(&tick) {
                    if *expected != json {
                        return Err(ServeError::Resume(ResumeError::Diverged { tick }));
                    }
                    audit.replayed_ticks += 1;
                    audit.replayed_comparisons += tick_answers;
                    counter_add(names::REPLAYED_COMPARISONS, &[], tick_answers);
                }
            }
            self.journal.append_json(&json);
            if self.chaos == Some(ServeKill::TornCompleted(tick)) {
                let torn = self.journal.pending_len() / 2;
                self.journal.flush_torn(torn);
                self.crashed = true;
                return Err(ServeError::Crashed);
            }
            self.unflushed += 1;
            if self.unflushed >= self.config.checkpoint.every_batches {
                let bytes = self.journal.flush();
                emit(Event::CheckpointWritten {
                    batches: tick + 1,
                    bytes,
                });
                counter_add(names::JOURNAL_BYTES, &[], bytes);
                self.unflushed = 0;
            }
        }

        self.tick += 1;
        Ok(())
    }

    /// One deficit-round-robin pass over the active jobs. Returns the
    /// pairs handed to shards, the pairs the judgment cache resolved
    /// without one, and the jobs whose tick stalled because every worker
    /// of the needed class was quarantined (span attribution:
    /// [`Stage::BreakerQuarantine`]).
    fn dispatch_tick(&mut self) -> (Vec<DispatchRecord>, Vec<CacheHitRecord>, BTreeSet<JobId>) {
        let tick = self.tick;
        let quantum = self.config.drr_quantum.max(1);
        let max_retries = self.config.retry.max_retries;
        let mut out = Vec::new();
        let mut hits = Vec::new();
        let mut quarantined = BTreeSet::new();
        for _ in 0..self.drr.len() {
            let Some(id) = self.drr.pop_front() else {
                break;
            };
            let Some(job) = self.active.get_mut(&id) else {
                continue; // completed earlier; dropped from rotation
            };
            self.drr.push_back(id);
            if job.is_done() || job.budget_stalled {
                continue;
            }
            // Cap banked deficit so an idle job cannot burst unboundedly.
            job.deficit = (job.deficit + quantum).min(quantum.saturating_mul(4));
            loop {
                if job.is_done() || !job.has_ready_pair() {
                    break;
                }
                let (class, votes) = job.class_and_votes();
                // Cache first: a hit resolves the pair right here —
                // before the deficit, reservation, and window gates,
                // because a cached verdict consumes none of the three.
                // Nothing is charged, committed, or reserved for it.
                if let Some((pk, pj)) = job.peek_pair() {
                    let (vk, vj) = (job.values[pk.0 as usize], job.values[pj.0 as usize]);
                    if let Some(k_wins) =
                        self.cache
                            .lookup(vk, vj, class, SHARD_TIE_POLICY, votes, tick)
                    {
                        let (k, j) = job.next_pair().expect("peeked pair is ready");
                        let winner = if k_wins { k } else { j };
                        hits.push(CacheHitRecord {
                            job: id.0,
                            k: k.0,
                            j: j.0,
                            votes,
                            winner: winner.0,
                        });
                        job.feed((k, j), Some(winner));
                        continue;
                    }
                }
                if job.deficit < u64::from(votes) {
                    break;
                }
                let pair_worst = u64::from(votes) * u64::from(1 + max_retries);
                if job.reserved.saturating_sub(job.committed) < pair_worst {
                    // The reservation cannot fund another worst-case
                    // pair: stop dispatching, finish degraded at the end
                    // of the tick. This gate is what keeps per-tenant
                    // charges provably within the bucket's dispensed
                    // tokens — charges follow dispatches, never lead.
                    job.budget_stalled = true;
                    break;
                }
                match Self::pick_shard(&self.shards, class, votes, tick) {
                    ShardPick::Ready(sidx) => {
                        let (k, j) = job.next_pair().expect("ready pair checked");
                        self.shards[sidx].reserve_window(votes);
                        job.committed += pair_worst;
                        job.deficit -= u64::from(votes);
                        out.push(DispatchRecord {
                            job: id.0,
                            shard: sidx as u32,
                            k: k.0,
                            j: j.0,
                            votes,
                        });
                    }
                    ShardPick::NoHealthy => {
                        if class == WorkerClass::Expert {
                            // Graceful degradation: the expert pool is
                            // quarantined/dropped out, so finish the job
                            // on the crowd with boosted votes instead of
                            // hanging until the deadline.
                            job.mark_degraded(DegradedReason::ExpertExhausted);
                            emit(Event::FaultObserved {
                                class,
                                kind: FaultKind::ExpertFallback,
                            });
                            counter_add(
                                names::FAULTS_TOTAL,
                                &[
                                    ("class", crowd_obs::class_label(class)),
                                    ("kind", crowd_obs::kind_label(FaultKind::ExpertFallback)),
                                ],
                                1,
                            );
                            continue;
                        }
                        // Crowd quarantine storm: the pair waits for a
                        // half-open probe to reopen capacity (or the
                        // deadline to lapse). Explicit, bounded waiting.
                        quarantined.insert(id);
                        break;
                    }
                    ShardPick::NoCapacity => break, // backpressure: next tick
                }
            }
        }
        (out, hits, quarantined)
    }

    /// Routes a pair to the least-loaded shard of `class` with healthy
    /// workers and window room (ties: lowest shard id).
    fn pick_shard(shards: &[WorkerShard], class: WorkerClass, votes: u32, tick: u64) -> ShardPick {
        let mut any_healthy = false;
        let mut best: Option<(u32, usize)> = None;
        for (i, shard) in shards.iter().enumerate() {
            if shard.class() != class || shard.healthy_workers(tick) == 0 {
                continue;
            }
            any_healthy = true;
            let window = shard.remaining_window();
            if window < votes {
                continue;
            }
            if best.is_none_or(|(w, _)| window > w) {
                best = Some((window, i));
            }
        }
        match best {
            Some((_, i)) => ShardPick::Ready(i),
            None if any_healthy => ShardPick::NoCapacity,
            None => ShardPick::NoHealthy,
        }
    }

    /// Drives the service over an arrival plan until the offered load is
    /// fully resolved, or `max_ticks` is reached (any stragglers then
    /// force-finish degraded and the remaining queue is shed).
    ///
    /// # Errors
    ///
    /// Propagates [`ServeError::Crashed`] from chaos kills and submission
    /// errors from malformed arrival plans.
    pub fn run(&mut self, plan: &ArrivalPlan, max_ticks: u64) -> Result<ServeReport, ServeError> {
        loop {
            let t = self.tick;
            for spec in plan.arrivals_at(t) {
                self.submit(spec)?;
            }
            self.step()?;
            if plan.exhausted(t) && self.active.is_empty() && self.queue.is_empty() {
                break;
            }
            if self.tick >= max_ticks {
                // Safety drain: never hang. Stragglers complete degraded,
                // queued jobs shed.
                for job in self.active.values_mut() {
                    if !job.is_done() {
                        job.force_finish(DegradedReason::DeadlineLapsed);
                    }
                }
                while let Some((job, spec, _)) = self.queue.pop_front() {
                    self.shed(job, spec.tenant, u64::MAX);
                }
                self.step()?;
                break;
            }
        }
        let bytes = self.journal.flush();
        if bytes > 0 {
            emit(Event::CheckpointWritten {
                batches: self.tick,
                bytes,
            });
            counter_add(names::JOURNAL_BYTES, &[], bytes);
        }
        let report = self.report();
        // Flow the report's latency tails and SLO burn into the metrics
        // exposition as per-tenant high watermarks — skipping tenants
        // with no completions, matching the report's zero semantics.
        for t in &report.tenants {
            if t.completed_ok + t.degraded == 0 {
                continue;
            }
            let tenant = t.tenant.to_string();
            gauge_set(
                names::SERVE_P99_LATENCY_TICKS,
                &[("tenant", &tenant)],
                t.p99_latency_ticks as i64,
            );
            gauge_set(
                names::SERVE_MAX_LATENCY_TICKS,
                &[("tenant", &tenant)],
                t.max_latency_ticks as i64,
            );
            if self.config.slo.enabled {
                gauge_set(
                    names::SERVE_SLO_BURN_BPS,
                    &[("tenant", &tenant)],
                    i64::from(t.slo_burn_max_bps),
                );
            }
        }
        Ok(report)
    }

    /// The report over everything completed so far.
    pub fn report(&self) -> ServeReport {
        let mut tenants = Vec::new();
        for (tenant, bucket) in &self.buckets {
            let jobs: Vec<&CompletedJob> = self
                .completed
                .iter()
                .filter(|j| j.tenant == *tenant)
                .collect();
            let mut latencies: Vec<u64> = jobs.iter().map(|j| j.latency_ticks()).collect();
            latencies.sort_unstable();
            let p99 = if latencies.is_empty() {
                0
            } else {
                latencies[(latencies.len() - 1) * 99 / 100]
            };
            let count_degraded = |reason: DegradedReason| {
                jobs.iter().filter(|j| j.degraded == Some(reason)).count() as u64
            };
            tenants.push(TenantReport {
                tenant: *tenant,
                offered: self.offered.get(tenant).copied().unwrap_or(0),
                admitted: self.admitted_count.get(tenant).copied().unwrap_or(0),
                shed: self.shed_count.get(tenant).copied().unwrap_or(0),
                completed_ok: jobs.iter().filter(|j| j.degraded.is_none()).count() as u64,
                degraded: jobs.iter().filter(|j| j.degraded.is_some()).count() as u64,
                degraded_deadline: count_degraded(DegradedReason::DeadlineLapsed),
                degraded_expert: count_degraded(DegradedReason::ExpertExhausted),
                degraded_budget: count_degraded(DegradedReason::BudgetExhausted),
                degraded_dead_letters: count_degraded(DegradedReason::DeadLetters),
                comparisons: self.charged_total.get(tenant).copied().unwrap_or(0),
                tokens_granted: bucket.granted(),
                tokens_refunded: bucket.refunded(),
                p99_latency_ticks: p99,
                max_latency_ticks: latencies.last().copied().unwrap_or(0),
                slo_breaches: self.slo.get(tenant).map_or(0, SloMonitor::breaches),
                slo_bad_jobs: self.slo.get(tenant).map_or(0, SloMonitor::bad_total),
                slo_burn_max_bps: self.slo.get(tenant).map_or(0, SloMonitor::burn_max_bps),
                slo_breached_at_end: self.slo.get(tenant).is_some_and(SloMonitor::breached),
            });
        }
        ServeReport {
            ticks: self.tick,
            tenants,
            jobs: self.completed.clone(),
            breaker_trips: self.shards.iter().map(|s| s.trips()).sum(),
            dead_letters: self.dead_letters,
            shed: self.shed_count.values().sum(),
            comparisons: self.charged_total.values().sum(),
            cache_hits: self.cache.stats().hits,
            cache_saved_comparisons: self.cache.stats().saved_comparisons,
        }
    }

    /// Resumes a crashed run from its durable journal bytes: validates
    /// the header, then re-runs the whole plan from tick 0 — every
    /// decision is deterministic, so the replayed prefix reproduces the
    /// journaled outcomes exactly (audited tick by tick, erroring with
    /// [`ResumeError::Diverged`] on any mismatch) and the final journal
    /// is byte-identical to an uninterrupted run's.
    ///
    /// Returns the report plus the finished service, whose journal's
    /// durable bytes callers can compare against an uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`ServeError::Resume`] on validation or audit failure; the same
    /// errors as [`CrowdServe::run`] afterwards.
    pub fn resume(
        config: ServeConfig,
        seed: u64,
        plan: &ArrivalPlan,
        bytes: &[u8],
        max_ticks: u64,
    ) -> Result<(ServeReport, CrowdServe), ServeError> {
        let decoded = Journal::decode_json(bytes);
        let mut torn_tail = decoded.torn_tail;
        let mut records: Vec<(ServeRecord, String)> = Vec::new();
        for (json, _) in decoded.frames {
            match serde_json::from_str::<ServeRecord>(&json) {
                Ok(record) => records.push((record, json)),
                Err(_) => {
                    torn_tail = true;
                    break;
                }
            }
        }
        let Some((
            ServeRecord::Started {
                version,
                seed: jseed,
                config_digest,
            },
            _,
        )) = records.first()
        else {
            return Err(ServeError::Resume(ResumeError::MissingHeader));
        };
        if *version != JOURNAL_VERSION {
            return Err(ServeError::Resume(ResumeError::VersionMismatch {
                journal: *version,
                code: JOURNAL_VERSION,
            }));
        }
        if *jseed != seed {
            return Err(ServeError::Resume(ResumeError::SeedMismatch {
                journal: *jseed,
                code: seed,
            }));
        }
        if *config_digest != config.digest() {
            return Err(ServeError::Resume(ResumeError::ConfigMismatch));
        }
        let expected: BTreeMap<u64, String> = records
            .iter()
            .filter_map(|(record, json)| match record {
                ServeRecord::TickCompleted { tick, .. } => Some((*tick, json.clone())),
                _ => None,
            })
            .collect();
        emit(Event::RecoveryStarted {
            batches: expected.len() as u64,
            torn_tail,
        });
        let mut service = CrowdServe::new(config, seed)?;
        service.replay = Some(ReplayAudit {
            expected,
            replayed_ticks: 0,
            replayed_comparisons: 0,
        });
        let report = service.run(plan, max_ticks)?;
        let audit = service.replay.as_ref().expect("audit installed above");
        emit(Event::RecoveryCompleted {
            replayed_batches: audit.replayed_ticks,
            replayed_comparisons: audit.replayed_comparisons,
        });
        Ok((report, service))
    }
}
