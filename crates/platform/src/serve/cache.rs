//! The cross-job judgment cache: once a pair of catalog items has been
//! judged at sufficient confidence, its verdict is an asset every later
//! job can reuse instead of re-buying the same comparisons.
//!
//! The paper's economy is the *cost of judgments* — two-phase max-finding
//! wins because it buys fewer and cheaper comparisons per correct answer.
//! A multi-tenant service multiplexing many jobs over shared worker pools
//! re-buys identical judgments whenever catalogs overlap; this module
//! amortizes them. A verdict is keyed by **content**, not by job:
//!
//! * the *value identity* of the two catalog items (their `f64` bit
//!   patterns, order-normalized) — two jobs that list the same item
//!   produce the same key regardless of local element ids,
//! * the **worker-class tier** that bought the verdict (a naïve-crowd
//!   majority never substitutes for an expert verification), and
//! * the **tie policy** the judging workers resolve indistinguishable
//!   pairs under (verdicts bought under different tie regimes are not
//!   exchangeable).
//!
//! The confidence/staleness policy deciding when a cached verdict may
//! substitute for a fresh judgment is [`CachePolicy`]: the cached verdict
//! must have been bought with **at least as many votes** as the new
//! request demands (confidence), and it must be **younger than
//! `max_age_ticks`** on the service's logical clock (staleness). Pairs of
//! bit-identical values are never cached or served — their outcome is an
//! element-id tie-break, an identity that value content cannot capture.
//!
//! Determinism contract: the cache is a pure function of the insert and
//! lookup sequence. No wall clock, no hashing randomness (keys live in a
//! `BTreeMap`), and eviction removes the least-recently-used entry by an
//! explicit monotone use counter — so a service run with a cache is
//! exactly as replayable as one without, and kill+resume re-warms the
//! cache to the identical state by re-running the same sequence.

use crowd_core::model::{TiePolicy, WorkerClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// When a cached verdict may substitute for fresh judgments, and how much
/// the store may retain. Part of [`ServeConfig`](crate::serve::ServeConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachePolicy {
    /// Master switch. Disabled, the service never consults or fills the
    /// cache and is byte-identical to the pre-cache service.
    pub enabled: bool,
    /// Maximum verdicts retained; beyond it the least-recently-used entry
    /// is evicted (deterministically, by monotone use counter).
    pub capacity: usize,
    /// A cached verdict older than this many ticks is stale and will not
    /// be served (it stays stored until evicted or refreshed).
    /// `u64::MAX` disables staleness.
    pub max_age_ticks: u64,
}

impl CachePolicy {
    /// The default posture: enabled, 4096 verdicts, no staleness bound.
    pub fn default_on() -> Self {
        CachePolicy {
            enabled: true,
            capacity: 4096,
            max_age_ticks: u64::MAX,
        }
    }

    /// A disabled cache — the pre-cache service, byte for byte.
    pub fn disabled() -> Self {
        CachePolicy {
            enabled: false,
            capacity: 0,
            max_age_ticks: 0,
        }
    }

    /// Sets the entry capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the staleness bound.
    pub fn with_max_age(mut self, ticks: u64) -> Self {
        self.max_age_ticks = ticks;
        self
    }
}

/// Monotone counters describing everything the cache has done. `hits`
/// and `saved_comparisons` also surface in the service report; the rest
/// are observability-only so a zero-overlap cache-on run's *report* stays
/// byte-identical to a cache-off run's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups attempted (cache enabled, distinguishable pair).
    pub lookups: u64,
    /// Lookups served from the store.
    pub hits: u64,
    /// Lookups that missed (absent, under-voted, or stale).
    pub misses: u64,
    /// Verdicts written into the store.
    pub insertions: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Comparisons (votes) the hits avoided buying.
    pub saved_comparisons: u64,
}

/// The content key: order-normalized value bits plus the worker-class
/// tier and tie policy the verdict was bought under. `lo < hi` always —
/// equal-bits pairs are rejected before keying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct VerdictKey {
    lo: u64,
    hi: u64,
    class: u8,
    tie: u8,
}

fn class_tag(class: WorkerClass) -> u8 {
    match class {
        WorkerClass::Naive => 0,
        WorkerClass::Expert => 1,
    }
}

fn tie_tag(tie: TiePolicy) -> u8 {
    match tie {
        TiePolicy::UniformRandom => 0,
        TiePolicy::Persistent => 1,
        TiePolicy::FavorLower => 2,
        TiePolicy::FavorHigher => 3,
        TiePolicy::FavorSmallerId => 4,
    }
}

/// One stored verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Verdict {
    /// True when the item with the *higher* value bits won.
    hi_won: bool,
    /// Votes the verdict was bought with — its confidence.
    votes: u32,
    /// Tick the verdict was stored (refreshed on re-insert).
    stored_tick: u64,
    /// Monotone recency stamp for LRU eviction.
    used: u64,
}

/// The deterministic cross-job judgment store.
#[derive(Debug, Clone)]
pub struct JudgmentCache {
    policy: CachePolicy,
    entries: BTreeMap<VerdictKey, Verdict>,
    use_seq: u64,
    stats: CacheStats,
}

impl JudgmentCache {
    /// An empty cache under `policy`.
    pub fn new(policy: CachePolicy) -> Self {
        JudgmentCache {
            policy,
            entries: BTreeMap::new(),
            use_seq: 0,
            stats: CacheStats::default(),
        }
    }

    /// The governing policy.
    pub fn policy(&self) -> &CachePolicy {
        &self.policy
    }

    /// Everything the cache has done so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Verdicts currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn key(vk: f64, vj: f64, class: WorkerClass, tie: TiePolicy) -> Option<(VerdictKey, bool)> {
        let (kb, jb) = (vk.to_bits(), vj.to_bits());
        if kb == jb {
            // Bit-identical values: the outcome is an element-id
            // tie-break, not a property of the values. Never cached.
            return None;
        }
        let (lo, hi, k_is_hi) = if kb < jb {
            (kb, jb, false)
        } else {
            (jb, kb, true)
        };
        Some((
            VerdictKey {
                lo,
                hi,
                class: class_tag(class),
                tie: tie_tag(tie),
            },
            k_is_hi,
        ))
    }

    /// Consults the store for a verdict on `(vk, vj)` bought from `class`
    /// workers under `tie`, wanted at `votes` confidence, at logical time
    /// `tick`. Returns `Some(true)` when the cached verdict says the
    /// `vk` side wins, `Some(false)` for the `vj` side, `None` on a miss
    /// (absent, under-voted, stale, disabled, or a bit-identical pair —
    /// the last never counts as a lookup).
    pub fn lookup(
        &mut self,
        vk: f64,
        vj: f64,
        class: WorkerClass,
        tie: TiePolicy,
        votes: u32,
        tick: u64,
    ) -> Option<bool> {
        if !self.policy.enabled {
            return None;
        }
        let (key, k_is_hi) = Self::key(vk, vj, class, tie)?;
        self.stats.lookups += 1;
        let max_age = self.policy.max_age_ticks;
        let fresh_enough =
            |v: &Verdict| v.votes >= votes && tick.saturating_sub(v.stored_tick) <= max_age;
        match self.entries.get_mut(&key) {
            Some(v) if fresh_enough(v) => {
                self.use_seq += 1;
                v.used = self.use_seq;
                self.stats.hits += 1;
                self.stats.saved_comparisons += u64::from(votes);
                Some(v.hi_won == k_is_hi)
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a fully-paid verdict: `k_won` says the `vk` side won a
    /// clean `votes`-vote majority from `class` workers under `tie` at
    /// `tick`. An existing higher-confidence entry is kept; an equal or
    /// lower one is replaced (refreshing its staleness clock). No-op when
    /// disabled or the pair is bit-identical.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &mut self,
        vk: f64,
        vj: f64,
        class: WorkerClass,
        tie: TiePolicy,
        k_won: bool,
        votes: u32,
        tick: u64,
    ) {
        if !self.policy.enabled || self.policy.capacity == 0 {
            return;
        }
        let Some((key, k_is_hi)) = Self::key(vk, vj, class, tie) else {
            return;
        };
        if let Some(existing) = self.entries.get(&key) {
            if existing.votes > votes {
                return;
            }
        }
        self.use_seq += 1;
        let fresh = Verdict {
            hi_won: k_won == k_is_hi,
            votes,
            stored_tick: tick,
            used: self.use_seq,
        };
        if self.entries.insert(key, fresh).is_none() {
            self.stats.insertions += 1;
            if self.entries.len() > self.policy.capacity {
                self.evict_lru();
            }
        } else {
            self.stats.insertions += 1;
        }
    }

    /// Removes the least-recently-used entry (smallest `used` stamp —
    /// unique because the stamp is monotone).
    fn evict_lru(&mut self) {
        if let Some(key) = self
            .entries
            .iter()
            .min_by_key(|(_, v)| v.used)
            .map(|(k, _)| *k)
        {
            self.entries.remove(&key);
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: WorkerClass = WorkerClass::Naive;
    const E: WorkerClass = WorkerClass::Expert;
    const T: TiePolicy = TiePolicy::UniformRandom;

    fn cache(capacity: usize) -> JudgmentCache {
        JudgmentCache::new(CachePolicy::default_on().with_capacity(capacity))
    }

    #[test]
    fn round_trips_a_verdict_in_either_orientation() {
        let mut c = cache(16);
        c.insert(3.0, 7.0, N, T, false, 3, 0); // the 7.0 side won
        assert_eq!(c.lookup(3.0, 7.0, N, T, 3, 1), Some(false));
        assert_eq!(c.lookup(7.0, 3.0, N, T, 3, 1), Some(true), "orientation");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().saved_comparisons, 6);
    }

    #[test]
    fn class_and_tie_are_part_of_the_key() {
        let mut c = cache(16);
        c.insert(1.0, 2.0, N, T, false, 3, 0);
        assert_eq!(c.lookup(1.0, 2.0, E, T, 3, 0), None, "crowd ≠ expert");
        assert_eq!(
            c.lookup(1.0, 2.0, N, TiePolicy::FavorLower, 3, 0),
            None,
            "tie policy is part of the identity"
        );
        assert_eq!(c.lookup(1.0, 2.0, N, T, 3, 0), Some(false));
    }

    #[test]
    fn confidence_gate_rejects_under_voted_verdicts() {
        let mut c = cache(16);
        c.insert(1.0, 2.0, N, T, false, 3, 0);
        assert_eq!(c.lookup(1.0, 2.0, N, T, 5, 0), None, "3 < 5 votes");
        assert_eq!(c.lookup(1.0, 2.0, N, T, 2, 0), Some(false), "3 ≥ 2");
        // A higher-confidence insert upgrades; a lower one cannot demote.
        c.insert(1.0, 2.0, N, T, false, 5, 1);
        assert_eq!(c.lookup(1.0, 2.0, N, T, 5, 1), Some(false));
        c.insert(1.0, 2.0, N, T, true, 1, 2);
        assert_eq!(c.lookup(1.0, 2.0, N, T, 5, 2), Some(false), "kept 5-vote");
    }

    #[test]
    fn staleness_gate_expires_old_verdicts() {
        let mut c =
            JudgmentCache::new(CachePolicy::default_on().with_capacity(16).with_max_age(10));
        c.insert(1.0, 2.0, N, T, false, 3, 100);
        assert_eq!(c.lookup(1.0, 2.0, N, T, 3, 110), Some(false), "age 10 ok");
        assert_eq!(c.lookup(1.0, 2.0, N, T, 3, 111), None, "age 11 stale");
        // Re-inserting refreshes the clock.
        c.insert(1.0, 2.0, N, T, false, 3, 111);
        assert_eq!(c.lookup(1.0, 2.0, N, T, 3, 112), Some(false));
    }

    #[test]
    fn bit_identical_pairs_are_never_cached_or_counted() {
        let mut c = cache(16);
        c.insert(5.0, 5.0, N, T, true, 3, 0);
        assert!(c.is_empty());
        assert_eq!(c.lookup(5.0, 5.0, N, T, 3, 0), None);
        assert_eq!(c.stats().lookups, 0, "tie pairs are not lookups");
    }

    #[test]
    fn eviction_is_lru_and_deterministic() {
        let mut c = cache(2);
        c.insert(1.0, 2.0, N, T, false, 3, 0);
        c.insert(3.0, 4.0, N, T, false, 3, 1);
        // Touch the first entry so the second becomes LRU.
        assert_eq!(c.lookup(1.0, 2.0, N, T, 3, 2), Some(false));
        c.insert(5.0, 6.0, N, T, false, 3, 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.lookup(3.0, 4.0, N, T, 3, 4), None, "LRU entry evicted");
        assert_eq!(c.lookup(1.0, 2.0, N, T, 3, 4), Some(false), "MRU survives");
    }

    #[test]
    fn disabled_cache_does_nothing() {
        let mut c = JudgmentCache::new(CachePolicy::disabled());
        c.insert(1.0, 2.0, N, T, false, 3, 0);
        assert_eq!(c.lookup(1.0, 2.0, N, T, 3, 0), None);
        assert_eq!(c.stats(), CacheStats::default(), "no counters move");
    }

    #[test]
    fn replays_identically() {
        let run = || {
            let mut c = cache(3);
            let mut trace = Vec::new();
            for i in 0..40u64 {
                let a = (i % 7) as f64;
                let b = ((i % 5) + 7) as f64;
                if i % 3 == 0 {
                    c.insert(a, b, N, T, i % 2 == 0, 3, i);
                }
                trace.push(c.lookup(a, b, N, T, 3, i));
            }
            (trace, c.stats())
        };
        assert_eq!(run(), run());
    }
}
