//! Tenants and their token-bucket comparison budgets.
//!
//! Every comparison the service performs is charged to exactly one
//! tenant, and admission control reserves a job's worst-case comparison
//! cost *up front* — so the bucket invariant is provable: the sum of
//! comparisons ever charged to a tenant can never exceed the tokens its
//! bucket ever dispensed (initial fill plus refills). Unused reservation
//! is refunded when the job completes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a tenant (a requester account multiplexed onto the
/// service).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Admission policy for one tenant: a token bucket denominated in
/// comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantPolicy {
    /// The tenant the policy governs.
    pub tenant: TenantId,
    /// Maximum tokens the bucket can hold.
    pub capacity: u64,
    /// Tokens added per service tick (saturating at `capacity`).
    pub refill_per_tick: u64,
    /// Tokens in the bucket at tick 0 (clamped to `capacity`).
    pub initial: u64,
}

impl TenantPolicy {
    /// A policy with a full bucket at tick 0.
    pub fn new(tenant: TenantId, capacity: u64, refill_per_tick: u64) -> Self {
        TenantPolicy {
            tenant,
            capacity,
            refill_per_tick,
            initial: capacity,
        }
    }

    /// Overrides the tick-0 fill level.
    pub fn with_initial(mut self, initial: u64) -> Self {
        self.initial = initial;
        self
    }
}

/// A live token bucket: lazily refilled on a logical clock, with a
/// monotone ledger of tokens granted and refunded so accounting proofs
/// need no event replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBucket {
    policy: TenantPolicy,
    tokens: u64,
    last_tick: u64,
    granted: u64,
    refunded: u64,
}

impl TokenBucket {
    /// A bucket at tick 0 under `policy`.
    pub fn new(policy: TenantPolicy) -> Self {
        TokenBucket {
            tokens: policy.initial.min(policy.capacity),
            policy,
            last_tick: 0,
            granted: 0,
            refunded: 0,
        }
    }

    /// The governing policy.
    pub fn policy(&self) -> &TenantPolicy {
        &self.policy
    }

    /// Tokens currently available at `tick`.
    pub fn available(&mut self, tick: u64) -> u64 {
        self.advance(tick);
        self.tokens
    }

    /// Monotone total of tokens ever reserved through this bucket.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Monotone total of reserved tokens returned unused.
    pub fn refunded(&self) -> u64 {
        self.refunded
    }

    /// Lazily refills up to `tick`. Strictly monotone: a `tick` at or
    /// before `last_tick` is a no-op — it must not mint refill tokens
    /// or move the clock backwards. WAL resume replays the plan from
    /// tick 0, so a bucket restored mid-run will see ticks it has
    /// already credited; double-minting there would break the
    /// granted-bounds-charges ledger invariant.
    fn advance(&mut self, tick: u64) {
        if tick > self.last_tick {
            let elapsed = tick - self.last_tick;
            let refill = self.policy.refill_per_tick.saturating_mul(elapsed);
            self.tokens = self.tokens.saturating_add(refill).min(self.policy.capacity);
            self.last_tick = tick;
        }
    }

    /// Attempts to reserve `cost` tokens at `tick`. On success the tokens
    /// are removed and counted in [`granted`](TokenBucket::granted).
    pub fn try_reserve(&mut self, cost: u64, tick: u64) -> bool {
        self.advance(tick);
        if cost > self.tokens {
            return false;
        }
        self.tokens -= cost;
        self.granted += cost;
        true
    }

    /// Returns `tokens` of an earlier reservation unused. The refill is
    /// capped at the bucket capacity — an over-full bucket would let a
    /// tenant bank more than its policy allows.
    pub fn refund(&mut self, tokens: u64, tick: u64) {
        self.advance(tick);
        let headroom = self.policy.capacity - self.tokens;
        let back = tokens.min(headroom);
        self.tokens += back;
        self.refunded += back;
    }

    /// How many ticks past `tick` until `cost` tokens could be available,
    /// assuming no competing reservations. `u64::MAX` when the bucket can
    /// never hold `cost` (cost above capacity, or no refill and not
    /// enough banked).
    pub fn ticks_until(&mut self, cost: u64, tick: u64) -> u64 {
        self.advance(tick);
        if cost > self.policy.capacity {
            return u64::MAX;
        }
        if cost <= self.tokens {
            return 0;
        }
        let deficit = cost - self.tokens;
        if self.policy.refill_per_tick == 0 {
            return u64::MAX;
        }
        deficit.div_ceil(self.policy.refill_per_tick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket(capacity: u64, refill: u64, initial: u64) -> TokenBucket {
        TokenBucket::new(TenantPolicy::new(TenantId(0), capacity, refill).with_initial(initial))
    }

    #[test]
    fn reserve_and_refill() {
        let mut b = bucket(100, 10, 50);
        assert!(b.try_reserve(40, 0));
        assert_eq!(b.available(0), 10);
        assert!(!b.try_reserve(20, 0));
        // 2 ticks × 10 refill = 30 available.
        assert!(b.try_reserve(25, 2));
        assert_eq!(b.granted(), 65);
    }

    #[test]
    fn refill_saturates_at_capacity() {
        let mut b = bucket(100, 10, 100);
        assert_eq!(b.available(1_000_000), 100);
    }

    #[test]
    fn refund_is_capped_and_ledgered() {
        let mut b = bucket(100, 0, 100);
        assert!(b.try_reserve(80, 0));
        b.refund(60, 0);
        assert_eq!(b.available(0), 80);
        assert_eq!(b.refunded(), 60);
        // A refund never overfills the bucket.
        b.refund(1_000, 0);
        assert_eq!(b.available(0), 100);
        assert_eq!(b.refunded(), 80);
    }

    #[test]
    fn ticks_until_estimates_refill_time() {
        let mut b = bucket(100, 10, 5);
        assert_eq!(b.ticks_until(5, 0), 0);
        assert_eq!(b.ticks_until(25, 0), 2);
        assert_eq!(b.ticks_until(26, 0), 3);
        assert_eq!(b.ticks_until(101, 0), u64::MAX, "above capacity");
        let mut dry = bucket(100, 0, 5);
        assert_eq!(dry.ticks_until(6, 0), u64::MAX, "no refill");
    }

    #[test]
    fn granted_bounds_charges() {
        // The invariant admission control relies on: granted only moves
        // when a reservation succeeds, so anything charged against
        // reservations is bounded by the dispensed tokens.
        let mut b = bucket(50, 5, 50);
        let mut granted_expected = 0;
        for tick in 0..20 {
            if b.try_reserve(30, tick) {
                granted_expected += 30;
            }
        }
        assert_eq!(b.granted(), granted_expected);
        assert!(b.granted() <= 50 + 5 * 19);
    }

    #[test]
    fn replayed_and_non_monotone_ticks_never_mint_tokens() {
        // WAL resume replays the plan from tick 0 against buckets that
        // may already sit at a later tick, so `advance` must treat any
        // tick ≤ last_tick as a no-op: no refill minted, no clock
        // rewind, ledger untouched.
        let mut b = bucket(100, 10, 20);
        assert!(b.try_reserve(15, 4)); // clock now at tick 4
        let snapshot = b.clone();
        // Replay a journaled-looking tick sequence that runs backwards
        // through ticks the bucket has already credited.
        for &tick in &[4, 3, 2, 0, 4, 1] {
            assert_eq!(
                b.available(tick),
                snapshot.tokens,
                "tick {tick} minted refill"
            );
            assert!(!b.try_reserve(u64::MAX, tick));
            b.refund(0, tick);
        }
        assert_eq!(
            b, snapshot,
            "replayed ticks must leave the bucket bit-identical"
        );

        // And the ledger after a stale-tick reserve/refund pair matches
        // the same operations performed at the current tick.
        let mut replayed = snapshot.clone();
        let mut fresh = snapshot.clone();
        assert!(replayed.try_reserve(5, 1)); // stale tick: same funds as tick 4
        replayed.refund(5, 2);
        assert!(fresh.try_reserve(5, 4));
        fresh.refund(5, 4);
        assert_eq!(replayed.granted(), fresh.granted());
        assert_eq!(replayed.refunded(), fresh.refunded());
        assert_eq!(replayed.available(4), fresh.available(4));
    }
}
