//! One max-finding job inside the service: a two-phase single-elimination
//! tournament expressed as an explicit state machine the scheduler can
//! interleave with other jobs, pair by pair.
//!
//! Phase 1 (the paper's naïve filter) plays knockout rounds on the cheap
//! crowd until at most `finalists` candidates remain; Phase 2 hands the
//! finalists to the expert shard. Each phase advances one *pair outcome*
//! at a time through [`ActiveJob::feed`], so the deficit-round-robin
//! dispatcher can give a slice of a round to one job, move on, and come
//! back — no job ever holds a shard hostage for a whole round.

use crate::serve::tenant::TenantId;
use crowd_core::element::ElementId;
use crowd_core::model::WorkerClass;
use crowd_core::trace::DegradedReason;
use crowd_obs::StageAccum;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier the service assigns to every submission (shed ones
/// included, so arrival streams replay identically).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// A submitted max-finding job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The tenant paying for the job.
    pub tenant: TenantId,
    /// The hidden values; the service sorts for `argmax`.
    pub values: Vec<f64>,
    /// Judgments per Phase-1 comparison.
    pub votes: u32,
    /// Judgments per Phase-2 (expert) comparison.
    pub expert_votes: u32,
    /// Ticks after admission before the job is force-completed
    /// degraded ([`DegradedReason::DeadlineLapsed`]).
    pub deadline_ticks: u64,
}

impl JobSpec {
    /// Worst-case comparisons the job can charge: a knockout tournament
    /// over `n` elements plays exactly `n − 1` pairs across both phases,
    /// each pair costs at most the largest vote requirement, and every
    /// vote may burn its full retry allowance. Admission reserves this.
    pub fn worst_cost(&self, fallback_votes: u32, max_retries: u32) -> u64 {
        let pairs = (self.values.len() as u64).saturating_sub(1);
        let votes = self.votes.max(self.expert_votes).max(fallback_votes) as u64;
        pairs * votes * (1 + max_retries as u64)
    }
}

/// Which stage of the two-phase protocol a job is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobPhase {
    /// Phase 1: knockout rounds on the naïve crowd.
    Filter,
    /// Phase 2: expert verification of the finalists.
    Expert,
    /// Finished; [`ActiveJob::winner`] is set.
    Done,
}

/// A job admitted into the service, mid-tournament.
#[derive(Debug, Clone)]
pub struct ActiveJob {
    /// The service-assigned id.
    pub id: JobId,
    /// The owning tenant.
    pub tenant: TenantId,
    /// The hidden values, indexed by `ElementId`.
    pub values: Vec<f64>,
    /// Judgments per Phase-1 pair.
    pub votes: u32,
    /// Judgments per Phase-2 pair.
    pub expert_votes: u32,
    /// Vote boost applied when the expert phase falls back to the crowd.
    pub fallback_votes: u32,
    /// Absolute tick the deadline lapses at.
    pub deadline: u64,
    /// Tokens reserved from the tenant bucket at admission.
    pub reserved: u64,
    /// Comparisons actually charged so far (usable + late answers).
    pub charged: u64,
    /// Worst-case cost of pairs already dispatched — the dispatch gate
    /// that keeps `charged ≤ reserved` provable.
    pub committed: u64,
    /// Tick the job was submitted.
    pub submitted: u64,
    /// Tick the job was admitted (equals `submitted` unless it queued).
    pub admitted: u64,
    /// Deficit-round-robin credit, in judgments.
    pub deficit: u64,
    /// Set when the dispatch gate found the reservation too small to fund
    /// the next pair; the job force-completes at the end of the tick.
    pub budget_stalled: bool,
    /// The first degradation the job suffered, if any.
    pub degraded: Option<DegradedReason>,
    /// The winner, once [`JobPhase::Done`].
    pub winner: Option<ElementId>,
    /// Per-stage tick attribution: the service records exactly one stage
    /// per tick the job stays alive, so the accumulated ticks partition
    /// the job's post-admission latency.
    pub stages: StageAccum,
    phase: JobPhase,
    finalists: usize,
    pending: VecDeque<ElementId>,
    next_round: Vec<ElementId>,
    in_flight: u32,
}

impl ActiveJob {
    /// Builds the tournament over `spec`, admitted at `admitted` with
    /// `reserved` tokens. `finalists` is the Phase-1 survivor target.
    pub fn new(
        id: JobId,
        spec: JobSpec,
        submitted: u64,
        admitted: u64,
        reserved: u64,
        finalists: usize,
        fallback_votes: u32,
    ) -> Self {
        let n = spec.values.len();
        let mut job = ActiveJob {
            id,
            tenant: spec.tenant,
            values: spec.values,
            votes: spec.votes.max(1),
            expert_votes: spec.expert_votes.max(1),
            fallback_votes: fallback_votes.max(1),
            deadline: admitted.saturating_add(spec.deadline_ticks),
            reserved,
            charged: 0,
            committed: 0,
            submitted,
            admitted,
            deficit: 0,
            budget_stalled: false,
            degraded: None,
            winner: None,
            stages: StageAccum::new(),
            phase: JobPhase::Filter,
            finalists: finalists.max(2),
            pending: (0..n as u32).map(ElementId).collect(),
            next_round: Vec::new(),
            in_flight: 0,
        };
        if n <= job.finalists {
            job.phase = JobPhase::Expert;
        }
        if n == 1 {
            job.winner = Some(ElementId(0));
            job.phase = JobPhase::Done;
        }
        job
    }

    /// The current phase.
    pub fn phase(&self) -> JobPhase {
        self.phase
    }

    /// True once the job has a winner.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, JobPhase::Done)
    }

    /// Candidates still alive (current round plus already-advanced).
    pub fn survivors(&self) -> usize {
        self.pending.len() + self.next_round.len() + self.in_flight as usize
    }

    /// The worker class and vote count the job's next pair needs. Expert
    /// pairs degrade to vote-boosted crowd pairs once the job is marked
    /// [`DegradedReason::ExpertExhausted`].
    pub fn class_and_votes(&self) -> (WorkerClass, u32) {
        match self.phase {
            JobPhase::Filter => (WorkerClass::Naive, self.votes),
            JobPhase::Expert | JobPhase::Done => {
                if self.degraded == Some(DegradedReason::ExpertExhausted) {
                    (WorkerClass::Naive, self.fallback_votes)
                } else {
                    (WorkerClass::Expert, self.expert_votes)
                }
            }
        }
    }

    /// True when the job has a pair ready to dispatch right now.
    pub fn has_ready_pair(&self) -> bool {
        self.pending.len() >= 2
    }

    /// The comparison [`next_pair`](Self::next_pair) would return,
    /// without committing it — what the dispatcher shows the judgment
    /// cache before deciding whether the pair needs a shard at all.
    pub fn peek_pair(&self) -> Option<(ElementId, ElementId)> {
        if self.pending.len() < 2 {
            return None;
        }
        Some((self.pending[0], self.pending[1]))
    }

    /// Pops the next comparison of the current round, marking it in
    /// flight. Returns `None` when the round is exhausted (in-flight
    /// outcomes must land before the next round forms).
    pub fn next_pair(&mut self) -> Option<(ElementId, ElementId)> {
        if self.pending.len() < 2 {
            return None;
        }
        let k = self.pending.pop_front().expect("len checked");
        let j = self.pending.pop_front().expect("len checked");
        self.in_flight += 1;
        Some((k, j))
    }

    /// Marks the job degraded (first reason wins; later reasons are not
    /// an upgrade, the contract only promises the *first* cause).
    pub fn mark_degraded(&mut self, reason: DegradedReason) {
        if self.degraded.is_none() {
            self.degraded = Some(reason);
        }
    }

    /// Applies one pair outcome. A dead-lettered pair (`winner` = `None`)
    /// advances the lexicographically lower element and marks the job
    /// degraded — deterministic, explicit, never a hang.
    pub fn feed(&mut self, pair: (ElementId, ElementId), winner: Option<ElementId>) {
        debug_assert!(self.in_flight > 0, "feed without a dispatched pair");
        self.in_flight = self.in_flight.saturating_sub(1);
        let advanced = match winner {
            Some(w) => w,
            None => {
                self.mark_degraded(DegradedReason::DeadLetters);
                pair.0.min(pair.1)
            }
        };
        self.next_round.push(advanced);
        self.maybe_roll();
    }

    /// Completes the job immediately with the current leader — the
    /// deadline / budget-stall path. Only call between rounds (no pair in
    /// flight), which tick boundaries guarantee.
    pub fn force_finish(&mut self, reason: DegradedReason) {
        if self.is_done() {
            return;
        }
        self.mark_degraded(reason);
        self.winner = Some(self.leader());
        self.phase = JobPhase::Done;
    }

    /// The best current guess at the winner: the earliest survivor of the
    /// most recent completed comparisons, falling back to the round queue.
    fn leader(&self) -> ElementId {
        self.next_round
            .first()
            .copied()
            .or_else(|| self.pending.front().copied())
            .unwrap_or(ElementId(0))
    }

    /// Rolls the round when every pair of the current one has resolved:
    /// byes advance, a lone survivor wins, and a Phase-1 round that
    /// reaches the finalist target hands over to Phase 2.
    fn maybe_roll(&mut self) {
        if self.in_flight > 0 || self.pending.len() >= 2 || self.is_done() {
            return;
        }
        if let Some(bye) = self.pending.pop_front() {
            self.next_round.push(bye);
        }
        match self.next_round.len() {
            0 => {
                // Unreachable for non-empty catalogs; finish defensively
                // rather than loop forever.
                self.winner = Some(ElementId(0));
                self.phase = JobPhase::Done;
            }
            1 => {
                self.winner = Some(self.next_round[0]);
                self.phase = JobPhase::Done;
            }
            survivors => {
                if matches!(self.phase, JobPhase::Filter) && survivors <= self.finalists {
                    self.phase = JobPhase::Expert;
                }
                self.pending = std::mem::take(&mut self.next_round).into();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n: usize) -> JobSpec {
        JobSpec {
            tenant: TenantId(0),
            values: (0..n).map(|i| i as f64).collect(),
            votes: 1,
            expert_votes: 1,
            deadline_ticks: 100,
        }
    }

    fn job(n: usize) -> ActiveJob {
        ActiveJob::new(JobId(0), spec(n), 0, 0, u64::MAX, 2, 3)
    }

    /// Drives a job to completion feeding the true comparison outcome.
    fn run_honest(mut job: ActiveJob) -> (ElementId, u64, bool) {
        let mut pairs = 0u64;
        let mut saw_expert = false;
        while !job.is_done() {
            let (class, _) = job.class_and_votes();
            saw_expert |= class == WorkerClass::Expert;
            let (k, j) = job.next_pair().expect("active job must make progress");
            pairs += 1;
            let w = if job.values[k.0 as usize] >= job.values[j.0 as usize] {
                k
            } else {
                j
            };
            job.feed((k, j), Some(w));
        }
        (job.winner.unwrap(), pairs, saw_expert)
    }

    #[test]
    fn tournament_finds_the_max_and_plays_n_minus_1_pairs() {
        for n in 2..40 {
            let (winner, pairs, saw_expert) = run_honest(job(n));
            assert_eq!(winner, ElementId(n as u32 - 1), "n={n}");
            assert_eq!(pairs, n as u64 - 1, "knockout plays n-1 pairs, n={n}");
            assert!(saw_expert, "finalists must reach the expert phase, n={n}");
        }
    }

    #[test]
    fn singleton_job_is_born_done() {
        let j = job(1);
        assert!(j.is_done());
        assert_eq!(j.winner, Some(ElementId(0)));
    }

    #[test]
    fn worst_cost_covers_retries_and_boosts() {
        let s = spec(10);
        // 9 pairs × max(1,1,3) votes × (1+2) attempts.
        assert_eq!(s.worst_cost(3, 2), 9 * 3 * 3);
        assert_eq!(spec(1).worst_cost(3, 2), 0, "singletons compare nothing");
    }

    #[test]
    fn dead_pair_advances_lower_element_and_degrades() {
        let mut j = job(4);
        let (k, a) = j.next_pair().unwrap();
        j.feed((k, a), None);
        assert_eq!(j.degraded, Some(DegradedReason::DeadLetters));
        let (winner, _, _) = run_honest(j);
        // Element 3 is still alive in the other bracket and must win.
        assert_eq!(winner, ElementId(3));
    }

    #[test]
    fn force_finish_is_deterministic_and_sticky() {
        let mut j = job(8);
        let (k, a) = j.next_pair().unwrap();
        j.feed((k, a), Some(a));
        j.force_finish(DegradedReason::DeadlineLapsed);
        assert!(j.is_done());
        assert_eq!(j.degraded, Some(DegradedReason::DeadlineLapsed));
        assert_eq!(j.winner, Some(a), "leader = first advanced element");
        // A second degradation does not overwrite the first.
        j.mark_degraded(DegradedReason::BudgetExhausted);
        assert_eq!(j.degraded, Some(DegradedReason::DeadlineLapsed));
    }

    #[test]
    fn expert_exhaustion_reroutes_to_boosted_crowd() {
        let mut j = job(2);
        assert_eq!(j.phase(), JobPhase::Expert, "2 ≤ finalists skips Phase 1");
        assert_eq!(j.class_and_votes(), (WorkerClass::Expert, 1));
        j.mark_degraded(DegradedReason::ExpertExhausted);
        assert_eq!(j.class_and_votes(), (WorkerClass::Naive, 3));
    }

    #[test]
    fn rounds_wait_for_in_flight_pairs() {
        let mut j = job(4);
        let p1 = j.next_pair().unwrap();
        let p2 = j.next_pair().unwrap();
        assert!(j.next_pair().is_none(), "round exhausted");
        j.feed(p1, Some(p1.0));
        assert!(
            j.next_pair().is_none(),
            "next round must not form while a pair is in flight"
        );
        j.feed(p2, Some(p2.1));
        assert!(j.has_ready_pair(), "final round ready");
    }
}
