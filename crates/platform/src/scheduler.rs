//! Logical and physical time steps (paper Section 3, "Human workers and
//! crowdsourcing algorithms").
//!
//! Algorithms proceed in *logical* steps: in step `s` a batch `B_s` of
//! comparisons is sent to the platform, and the next batch depends on the
//! answers. Each logical step expands into a sequence `F(s)` of consecutive
//! *physical* steps: at every physical step `t` a subset `W_t` of the
//! workers is active and each active worker judges one unit. With `w`
//! eligible workers and `m` judgments requested, a batch therefore takes
//! `ceil(m / w)` physical steps — the paper's (and Venetis et al.'s)
//! time-complexity measure.
//!
//! The scheduler builds the concrete assignment: which worker judges which
//! unit at which physical step, never assigning the same worker to the same
//! unit twice.

use crate::pool::WorkerPool;
use crate::task::{Job, Judgment, UnitId};
use crate::worker::WorkerId;
use crowd_core::model::WorkerClass;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One planned assignment: `worker` judges `unit` at `physical_step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// The unit to judge.
    pub unit: UnitId,
    /// The worker assigned.
    pub worker: WorkerId,
    /// The physical step at which the judgment happens.
    pub physical_step: u64,
}

/// A full schedule for one job (one logical step).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// All assignments, ordered by physical step.
    pub assignments: Vec<Assignment>,
    /// Number of physical steps the logical step spans (`|F(s)|`).
    pub physical_steps: u64,
}

/// Errors the scheduler can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// No eligible worker of the required class exists.
    NoEligibleWorkers {
        /// The class that has no eligible workers.
        class: WorkerClass,
    },
    /// A unit requires more judgments than there are eligible workers
    /// (a worker never judges the same unit twice).
    NotEnoughWorkersForUnit {
        /// The affected unit.
        unit: UnitId,
        /// Judgments requested per unit.
        requested: u32,
        /// Eligible workers available.
        available: usize,
    },
    /// A batch-latency figure was requested for an empty worker pool
    /// (`w == 0`): no number of physical steps completes the batch.
    EmptyPool,
    /// A retry re-assignment found no eligible worker that has not
    /// already been handed this unit (a worker never judges the same
    /// unit twice, even across retries).
    NoFreshWorkerForUnit {
        /// The unit that cannot be re-assigned.
        unit: UnitId,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::NoEligibleWorkers { class } => {
                write!(f, "no eligible {class} workers in the pool")
            }
            ScheduleError::NotEnoughWorkersForUnit {
                unit,
                requested,
                available,
            } => write!(
                f,
                "unit {unit:?} needs {requested} distinct judgments but only {available} eligible workers exist"
            ),
            ScheduleError::EmptyPool => write!(f, "a batch needs at least one worker"),
            ScheduleError::NoFreshWorkerForUnit { unit } => write!(
                f,
                "no eligible worker remains that has not already been assigned unit {unit:?}"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Plans a job of `class` over the eligible workers of `pool`, excluding
/// `excluded` (spam-flagged) workers.
///
/// Assignment policy: judgments are laid out unit-major and dealt to
/// workers round-robin starting at `rotation` (callers advance it between
/// jobs so load spreads across the pool), so each unit's judgments land on
/// distinct workers and the load is balanced; the physical step of the
/// `q`-th judgment is `q / w` where `w` is the number of eligible workers
/// (each worker does at most one judgment per physical step).
pub fn schedule(
    pool: &WorkerPool,
    job: &Job,
    class: WorkerClass,
    excluded: &HashSet<WorkerId>,
    starting_step: u64,
    rotation: usize,
) -> Result<Schedule, ScheduleError> {
    let mut eligible: Vec<WorkerId> = pool
        .ids_of_class(class)
        .into_iter()
        .filter(|w| !excluded.contains(w))
        .collect();
    // Rotate the dealing order so consecutive jobs spread over the whole
    // pool rather than always starting from the same worker — without this
    // a stream of single-unit jobs would starve most of the workforce (and
    // shield spammers from ever meeting a gold question).
    if !eligible.is_empty() {
        let shift = rotation % eligible.len();
        eligible.rotate_left(shift);
    }
    if eligible.is_empty() {
        return Err(ScheduleError::NoEligibleWorkers { class });
    }
    let w = eligible.len();
    let per_unit = job.judgments_per_unit();
    if per_unit as usize > w {
        return Err(ScheduleError::NotEnoughWorkersForUnit {
            unit: job.units()[0].id,
            requested: per_unit,
            available: w,
        });
    }

    let mut assignments = Vec::with_capacity(job.total_judgments() as usize);
    let mut q: u64 = 0;
    for unit in job.units() {
        for _ in 0..per_unit {
            assignments.push(Assignment {
                unit: unit.id,
                worker: eligible[(q % w as u64) as usize],
                physical_step: starting_step + q / w as u64,
            });
            q += 1;
        }
    }
    let physical_steps = q.div_ceil(w as u64);
    Ok(Schedule {
        assignments,
        physical_steps,
    })
}

/// Picks a fresh worker for a retry of `unit`: eligible (right class, not
/// `excluded`), and not in `already_assigned` — the workers this unit has
/// already been handed to, which preserves the distinct-workers-per-unit
/// invariant across retries. The dealing order rotates by `rotation` like
/// [`schedule`] so retry load also spreads over the pool.
///
/// # Errors
///
/// [`ScheduleError::NoEligibleWorkers`] if the class has no eligible
/// workers at all; [`ScheduleError::NoFreshWorkerForUnit`] if every
/// eligible worker already touched the unit.
pub fn reassign(
    pool: &WorkerPool,
    class: WorkerClass,
    excluded: &HashSet<WorkerId>,
    already_assigned: &HashSet<WorkerId>,
    unit: UnitId,
    rotation: usize,
) -> Result<WorkerId, ScheduleError> {
    let mut eligible: Vec<WorkerId> = pool
        .ids_of_class(class)
        .into_iter()
        .filter(|w| !excluded.contains(w))
        .collect();
    if eligible.is_empty() {
        return Err(ScheduleError::NoEligibleWorkers { class });
    }
    let shift = rotation % eligible.len();
    eligible.rotate_left(shift);
    eligible
        .into_iter()
        .find(|w| !already_assigned.contains(w))
        .ok_or(ScheduleError::NoFreshWorkerForUnit { unit })
}

/// The paper's batch-latency rule in closed form: `m` judgments dealt to
/// `w` parallel workers take `⌈m / w⌉` physical steps (Section 3, Remark —
/// the same rule [`schedule`] realizes assignment by assignment). Useful
/// for estimating the wall-clock footprint of a run from its comparison
/// tally alone, without building a pool and jobs.
///
/// # Errors
///
/// Returns [`ScheduleError::EmptyPool`] when `w == 0`: a depleted pool is
/// a schedule failure for the caller to surface (like every other fault
/// path), not an abort mid-experiment.
pub fn physical_steps(m: u64, w: usize) -> Result<u64, ScheduleError> {
    if w == 0 {
        return Err(ScheduleError::EmptyPool);
    }
    Ok(m.div_ceil(w as u64))
}

/// Checks the distinct-worker-per-unit invariant of a schedule (used by
/// tests and debug assertions).
pub fn distinct_workers_per_unit(schedule: &Schedule) -> bool {
    use std::collections::HashMap;
    let mut seen: HashMap<UnitId, HashSet<WorkerId>> = HashMap::new();
    schedule
        .assignments
        .iter()
        .all(|a| seen.entry(a.unit).or_default().insert(a.worker))
}

/// Converts produced judgments back into per-unit groups, preserving
/// order — a convenience for aggregation.
pub fn group_by_unit(judgments: &[Judgment]) -> std::collections::HashMap<UnitId, Vec<Judgment>> {
    let mut map: std::collections::HashMap<UnitId, Vec<Judgment>> =
        std::collections::HashMap::new();
    for &j in judgments {
        map.entry(j.unit).or_default().push(j);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::Behavior;
    use crowd_core::element::ElementId;

    fn pool(naive: usize) -> WorkerPool {
        let mut p = WorkerPool::new();
        p.hire_naive_crowd(naive, 1.0, 0.0);
        p
    }

    fn job(units: usize, judgments: u32) -> Job {
        let pairs: Vec<_> = (0..units)
            .map(|i| (ElementId(2 * i as u32), ElementId(2 * i as u32 + 1)))
            .collect();
        Job::from_pairs(&pairs, judgments)
    }

    #[test]
    fn all_judgments_scheduled_once() {
        let p = pool(5);
        let s = schedule(&p, &job(4, 3), WorkerClass::Naive, &HashSet::new(), 0, 0).unwrap();
        assert_eq!(s.assignments.len(), 12);
        assert!(distinct_workers_per_unit(&s));
    }

    #[test]
    fn physical_steps_follow_ceil_rule() {
        let p = pool(5);
        // 4 units × 3 judgments = 12 assignments over 5 workers → ⌈12/5⌉ = 3.
        let s = schedule(&p, &job(4, 3), WorkerClass::Naive, &HashSet::new(), 0, 0).unwrap();
        assert_eq!(s.physical_steps, 3);
        assert!(s.assignments.iter().all(|a| a.physical_step < 3));
        // A single worker per physical step does one judgment.
        for step in 0..3 {
            let mut workers_at_step = HashSet::new();
            for a in s.assignments.iter().filter(|a| a.physical_step == step) {
                assert!(
                    workers_at_step.insert(a.worker),
                    "worker double-booked at step {step}"
                );
            }
        }
    }

    #[test]
    fn closed_form_matches_the_planner() {
        let p = pool(5);
        let s = schedule(&p, &job(4, 3), WorkerClass::Naive, &HashSet::new(), 0, 0).unwrap();
        assert_eq!(Ok(s.physical_steps), physical_steps(12, 5));
        assert_eq!(physical_steps(0, 3), Ok(0));
        assert_eq!(physical_steps(10, 1), Ok(10));
        assert_eq!(physical_steps(11, 5), Ok(3));
    }

    #[test]
    fn closed_form_rejects_an_empty_pool() {
        assert_eq!(physical_steps(4, 0), Err(ScheduleError::EmptyPool));
        assert_eq!(
            ScheduleError::EmptyPool.to_string(),
            "a batch needs at least one worker"
        );
    }

    #[test]
    fn starting_step_offsets_the_schedule() {
        let p = pool(5);
        let s = schedule(&p, &job(2, 2), WorkerClass::Naive, &HashSet::new(), 10, 0).unwrap();
        assert!(s.assignments.iter().all(|a| a.physical_step >= 10));
    }

    #[test]
    fn excluded_workers_receive_nothing() {
        let p = pool(5);
        let banned: HashSet<WorkerId> = [WorkerId(0), WorkerId(1)].into();
        let s = schedule(&p, &job(3, 2), WorkerClass::Naive, &banned, 0, 0).unwrap();
        assert!(s.assignments.iter().all(|a| !banned.contains(&a.worker)));
    }

    #[test]
    fn too_many_judgments_per_unit_errors() {
        let p = pool(2);
        let err = schedule(&p, &job(1, 3), WorkerClass::Naive, &HashSet::new(), 0, 0).unwrap_err();
        assert!(matches!(err, ScheduleError::NotEnoughWorkersForUnit { .. }));
        assert!(err.to_string().contains("3 distinct judgments"));
    }

    #[test]
    fn missing_class_errors() {
        let p = pool(3); // no experts
        let err = schedule(&p, &job(1, 1), WorkerClass::Expert, &HashSet::new(), 0, 0).unwrap_err();
        assert!(matches!(err, ScheduleError::NoEligibleWorkers { .. }));
        assert!(err.to_string().contains("expert"));
    }

    #[test]
    fn spammer_hiring_does_not_break_scheduling() {
        let mut p = pool(2);
        p.hire(
            WorkerClass::Naive,
            "spam",
            Behavior::Spammer(crate::worker::SpamStrategy::Random),
        );
        let s = schedule(&p, &job(1, 3), WorkerClass::Naive, &HashSet::new(), 0, 0).unwrap();
        assert_eq!(s.assignments.len(), 3);
    }

    #[test]
    fn rotation_spreads_single_unit_jobs_across_the_pool() {
        let p = pool(5);
        let mut seen = HashSet::new();
        for rotation in 0..5 {
            let s = schedule(
                &p,
                &job(1, 1),
                WorkerClass::Naive,
                &HashSet::new(),
                0,
                rotation,
            )
            .unwrap();
            seen.insert(s.assignments[0].worker);
        }
        assert_eq!(
            seen.len(),
            5,
            "five rotations must reach five distinct workers"
        );
    }

    #[test]
    fn reassign_skips_workers_the_unit_already_saw() {
        let p = pool(3);
        let tried: HashSet<WorkerId> = [WorkerId(0), WorkerId(2)].into();
        let w = reassign(
            &p,
            WorkerClass::Naive,
            &HashSet::new(),
            &tried,
            UnitId(0),
            0,
        )
        .unwrap();
        assert_eq!(w, WorkerId(1));
    }

    #[test]
    fn reassign_respects_exclusions_and_rotation() {
        let p = pool(4);
        let excluded: HashSet<WorkerId> = [WorkerId(1)].into();
        // Eligible list is [0, 2, 3]; rotation 2 starts the deal at its
        // third entry, worker 3.
        let w = reassign(
            &p,
            WorkerClass::Naive,
            &excluded,
            &HashSet::new(),
            UnitId(0),
            2,
        )
        .unwrap();
        assert_eq!(w, WorkerId(3));
    }

    #[test]
    fn reassign_errors_when_every_worker_already_touched_the_unit() {
        let p = pool(2);
        let tried: HashSet<WorkerId> = [WorkerId(0), WorkerId(1)].into();
        let err = reassign(
            &p,
            WorkerClass::Naive,
            &HashSet::new(),
            &tried,
            UnitId(7),
            0,
        )
        .unwrap_err();
        assert_eq!(err, ScheduleError::NoFreshWorkerForUnit { unit: UnitId(7) });
        assert!(err.to_string().contains("not already been assigned"));
    }

    #[test]
    fn reassign_errors_on_an_empty_class() {
        let p = pool(2);
        let err = reassign(
            &p,
            WorkerClass::Expert,
            &HashSet::new(),
            &HashSet::new(),
            UnitId(0),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, ScheduleError::NoEligibleWorkers { .. }));
    }

    #[test]
    fn group_by_unit_partitions() {
        let js = vec![
            Judgment {
                unit: UnitId(0),
                worker: WorkerId(0),
                answer: ElementId(0),
                physical_step: 0,
            },
            Judgment {
                unit: UnitId(1),
                worker: WorkerId(1),
                answer: ElementId(2),
                physical_step: 0,
            },
            Judgment {
                unit: UnitId(0),
                worker: WorkerId(2),
                answer: ElementId(1),
                physical_step: 1,
            },
        ];
        let grouped = group_by_unit(&js);
        assert_eq!(grouped[&UnitId(0)].len(), 2);
        assert_eq!(grouped[&UnitId(1)].len(), 1);
    }
}
