//! The platform facade: jobs in, quality-controlled answers out.
//!
//! [`Platform`] plays the role CrowdFlower plays in the paper's
//! experiments: it owns the workforce, schedules batches over logical and
//! physical steps, interleaves gold questions (15% by default), scores
//! worker trust, discards responses of workers below the 70% gold-accuracy
//! bar, pays per judgment, and aggregates the surviving judgments per unit
//! by majority vote.
//!
//! [`PlatformOracle`] adapts a platform to `crowd-core`'s
//! [`ComparisonOracle`], so the Section 4 algorithms can run unmodified on
//! top of the full simulator — this is how the paper's CrowdFlower
//! experiments (Tables 1–2, Section 5.3) are reproduced.

use crate::billing::Ledger;
use crate::fault::{FaultConfig, FaultPlan, JudgeFate};
use crate::pool::WorkerPool;
use crate::quality::TrustTracker;
use crate::retry::{DeadLetter, DeadLetterReason, RetryPolicy};
use crate::scheduler::{reassign, schedule, ScheduleError};
use crate::task::{Job, Judgment, Unit, UnitId};
use crate::worker::WorkerId;
use crowd_core::cost::CostModel;
use crowd_core::element::{ElementId, Instance};
use crowd_core::model::WorkerClass;
use crowd_core::oracle::{ComparisonCounts, ComparisonOracle, OracleError};
use crowd_core::trace::{FaultCounts, FaultKind};
use crowd_obs::{class_label, kind_label, names as metric_names, Event};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Errors the platform can report to a requester.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// The scheduler could not plan the job.
    Schedule(ScheduleError),
    /// The campaign budget cap was reached; the campaign state (ledger,
    /// trust, dead letters) remains valid for a partial
    /// [`CampaignReport`](crate::report::CampaignReport).
    BudgetExhausted {
        /// The configured cap.
        cap: f64,
        /// Spending when the cap fired.
        spent: f64,
    },
    /// Regular units collected zero usable judgments despite retries; the
    /// job's partial results are recorded on the platform.
    UnitsUnanswered {
        /// The units that got no answer.
        units: Vec<UnitId>,
        /// Attempts made per judgment slot (initial + retries).
        attempts: u32,
        /// Majority answers for the units that *did* resolve. These
        /// comparisons were purchased and must not be re-bought: recovery
        /// and billing read the completed prefix from here instead of
        /// re-running the job.
        answers: HashMap<UnitId, ElementId>,
    },
}

impl From<ScheduleError> for PlatformError {
    fn from(err: ScheduleError) -> Self {
        PlatformError::Schedule(err)
    }
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::Schedule(err) => write!(f, "scheduling failed: {err}"),
            PlatformError::BudgetExhausted { cap, spent } => {
                write!(f, "budget cap {cap} reached (spent {spent})")
            }
            PlatformError::UnitsUnanswered {
                units, attempts, ..
            } => write!(
                f,
                "{} unit(s) unanswered after {attempts} attempts each",
                units.len()
            ),
        }
    }
}

impl std::error::Error for PlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlatformError::Schedule(err) => Some(err),
            _ => None,
        }
    }
}

impl PlatformError {
    /// Maps the platform failure onto the oracle-level error vocabulary,
    /// for surfacing through [`ComparisonOracle::try_compare`]. `class` is
    /// the worker class the failing comparison was posted to.
    pub fn to_oracle_error(&self, class: WorkerClass) -> OracleError {
        match self {
            PlatformError::Schedule(err) => match err {
                ScheduleError::NoEligibleWorkers { class } => {
                    OracleError::WorkforceDepleted { class: *class }
                }
                ScheduleError::NotEnoughWorkersForUnit { .. }
                | ScheduleError::NoFreshWorkerForUnit { .. }
                | ScheduleError::EmptyPool => OracleError::WorkforceDepleted { class },
            },
            PlatformError::BudgetExhausted { .. } => OracleError::BudgetExhausted,
            PlatformError::UnitsUnanswered { attempts, .. } => OracleError::Unanswered {
                attempts: *attempts,
            },
        }
    }
}

/// Platform-wide configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Judgments collected per unit (the paper requests "at least 21
    /// answers" per pair in the calibration experiments, and single
    /// judgments when driving algorithms).
    pub judgments_per_unit: u32,
    /// Fraction of gold units injected into each job (paper: 15%).
    pub gold_fraction: f64,
    /// Per-judgment pay for each class.
    pub payment: CostModel,
    /// Gold accuracy below which a worker's responses are ignored.
    pub trust_threshold: f64,
    /// Gold judgments before the threshold is enforced.
    pub min_gold: u32,
    /// Fault-injection knobs. [`FaultConfig::none`] (the default) keeps
    /// the platform byte-identical to a build without the fault layer.
    pub faults: FaultConfig,
    /// Seed of the campaign's [`FaultPlan`] — independent of the
    /// platform RNG so fault decisions never perturb worker behaviour.
    pub fault_seed: u64,
    /// Recovery policy for failed judgments.
    pub retry: RetryPolicy,
    /// Campaign spending cap. When reached, new jobs are refused (and
    /// running jobs stop retrying) with
    /// [`PlatformError::BudgetExhausted`] instead of panicking; the
    /// partial campaign state remains reportable.
    pub budget_cap: Option<f64>,
    /// Expert-depletion fallback: when an expert job cannot be scheduled
    /// because no eligible expert remains, re-run it as a naïve job with
    /// this (odd) vote-boost factor on `judgments_per_unit`, flagging the
    /// campaign degraded. `0` disables the fallback.
    pub expert_fallback_votes: u32,
}

impl PlatformConfig {
    /// The paper's CrowdFlower-like setup: single judgments, 15% gold,
    /// 70% trust threshold.
    pub fn paper_default() -> Self {
        PlatformConfig {
            judgments_per_unit: 1,
            gold_fraction: 0.15,
            payment: CostModel::with_ratio(10.0),
            trust_threshold: 0.7,
            min_gold: 3,
            faults: FaultConfig::none(),
            fault_seed: 0,
            retry: RetryPolicy::paper_default(),
            budget_cap: None,
            expert_fallback_votes: 0,
        }
    }

    /// Sets the judgments collected per unit.
    pub fn with_judgments_per_unit(mut self, j: u32) -> Self {
        self.judgments_per_unit = j;
        self
    }

    /// Sets the per-judgment payments.
    pub fn with_payment(mut self, payment: CostModel) -> Self {
        self.payment = payment;
        self
    }

    /// Disables gold injection (for controlled experiments).
    pub fn without_gold(mut self) -> Self {
        self.gold_fraction = 0.0;
        self
    }

    /// Sets the fault-injection knobs and the fault plan's seed.
    pub fn with_faults(mut self, faults: FaultConfig, seed: u64) -> Self {
        self.faults = faults;
        self.fault_seed = seed;
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the campaign budget cap.
    pub fn with_budget_cap(mut self, cap: f64) -> Self {
        self.budget_cap = Some(cap);
        self
    }

    /// Enables the expert-depletion fallback with an odd vote-boost
    /// factor.
    ///
    /// # Panics
    ///
    /// Panics if `votes` is even (majority voting needs an odd count) or
    /// zero.
    pub fn with_expert_fallback(mut self, votes: u32) -> Self {
        assert!(
            votes % 2 == 1,
            "the vote-boost factor must be odd for clean majorities, got {votes}"
        );
        self.expert_fallback_votes = votes;
        self
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig::paper_default()
    }
}

/// The outcome of running one job (one logical step).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Majority answer per regular unit (gold units are not reported —
    /// the requester already knows their answers).
    pub answers: HashMap<UnitId, ElementId>,
    /// Every judgment produced, including on gold units and by workers
    /// later flagged as spammers.
    pub judgments: Vec<Judgment>,
    /// Physical steps the job consumed (including retry backoff).
    pub physical_steps: u64,
    /// Workers whose responses were ignored during aggregation.
    pub excluded_workers: Vec<WorkerId>,
    /// Units that ended with fewer usable judgments than requested
    /// (empty on every fault-free run).
    pub degraded_units: Vec<UnitId>,
    /// Judgments re-assigned to fresh workers during this job.
    pub retries: u64,
    /// Dead letters recorded during this job.
    pub dead_letters: u64,
}

/// The simulated crowdsourcing platform.
#[derive(Debug)]
pub struct Platform<R: RngCore> {
    instance: Instance,
    pool: WorkerPool,
    config: PlatformConfig,
    trust: TrustTracker,
    ledger: Ledger,
    rng: R,
    gold_pairs: Vec<(ElementId, ElementId)>,
    physical_clock: u64,
    logical_steps: u64,
    counts: ComparisonCounts,
    next_unit: u32,
    /// Rotating dealing offset so consecutive jobs spread across the pool.
    rotation: usize,
    /// Workers retired mid-campaign: they keep their history but receive
    /// no further assignments.
    retired: HashSet<WorkerId>,
    /// The campaign's fault plan (stateless; decisions are hashes).
    fault_plan: FaultPlan,
    /// Monotone per-campaign judgment-attempt counter feeding the plan.
    fault_seq: u64,
    /// Faults injected and recovery actions taken, by class.
    fault_counts: FaultCounts,
    /// Workers already counted as campaign dropouts.
    dropped_seen: HashSet<WorkerId>,
    /// Units the campaign had to give up on.
    dead_letters: Vec<DeadLetter>,
    /// Workers assigned by the most recent job's schedule.
    last_assignments: Vec<WorkerId>,
    /// True once any result was produced in degraded mode.
    degraded: bool,
}

impl<R: RngCore> Platform<R> {
    /// Builds a platform over the ground-truth `instance` with the given
    /// workforce.
    pub fn new(instance: Instance, pool: WorkerPool, config: PlatformConfig, rng: R) -> Self {
        let trust = TrustTracker::new(config.trust_threshold, config.min_gold);
        let fault_plan = FaultPlan::new(config.faults, config.fault_seed);
        Platform {
            instance,
            pool,
            config,
            trust,
            ledger: Ledger::new(),
            rng,
            gold_pairs: Vec::new(),
            physical_clock: 0,
            logical_steps: 0,
            counts: ComparisonCounts::zero(),
            next_unit: 0,
            rotation: 0,
            retired: HashSet::new(),
            fault_plan,
            fault_seq: 0,
            fault_counts: FaultCounts::zero(),
            dropped_seen: HashSet::new(),
            dead_letters: Vec::new(),
            last_assignments: Vec::new(),
            degraded: false,
        }
    }

    /// Hires one more worker mid-campaign; she becomes eligible from the
    /// next job on. Crowd platforms see constant churn — workers arrive
    /// and leave while a campaign runs.
    pub fn hire_worker(
        &mut self,
        class: WorkerClass,
        channel: &str,
        behavior: crate::worker::Behavior,
    ) -> WorkerId {
        self.pool.hire(class, channel, behavior)
    }

    /// Retires a worker: her earnings and trust history remain on the
    /// books, but she receives no further assignments. Idempotent.
    pub fn retire_worker(&mut self, worker: WorkerId) {
        self.retired.insert(worker);
    }

    /// Workers retired so far.
    pub fn retired_workers(&self) -> &HashSet<WorkerId> {
        &self.retired
    }

    /// Registers gold pairs: comparisons whose correct answer the requester
    /// knows (answers are derived from the instance's ground truth, which
    /// is exactly what makes them gold).
    ///
    /// # Panics
    ///
    /// Panics if a pair repeats an element.
    pub fn set_gold_pairs(&mut self, pairs: Vec<(ElementId, ElementId)>) {
        for &(k, j) in &pairs {
            assert_ne!(k, j, "a gold pair must compare distinct elements");
        }
        self.gold_pairs = pairs;
    }

    /// The ground-truth instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The payment ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The trust tracker.
    pub fn trust(&self) -> &TrustTracker {
        &self.trust
    }

    /// The worker pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Physical steps elapsed across all jobs.
    pub fn physical_clock(&self) -> u64 {
        self.physical_clock
    }

    /// Logical steps (jobs) executed.
    pub fn logical_steps(&self) -> u64 {
        self.logical_steps
    }

    /// Total worker judgments by class.
    pub fn counts(&self) -> ComparisonCounts {
        self.counts
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Faults injected and recovery actions taken so far, by class.
    pub fn fault_counts(&self) -> FaultCounts {
        self.fault_counts
    }

    /// Position of the campaign's fault-plan attempt counter — the
    /// SplitMix64 stream index the next judgment fate will be drawn at.
    /// Journaled at every checkpoint so a resumed campaign draws the same
    /// fates an uninterrupted one would.
    pub fn fault_seq(&self) -> u64 {
        self.fault_seq
    }

    /// Workers assigned by the most recent job's schedule, in assignment
    /// order (empty before the first job). Journaled per batch so a
    /// recovery audit can see who was asked, not only what they answered.
    pub fn last_assignments(&self) -> &[WorkerId] {
        &self.last_assignments
    }

    /// Units the campaign gave up on after exhausting retries.
    pub fn dead_letters(&self) -> &[DeadLetter] {
        &self.dead_letters
    }

    /// True once any result was produced in degraded mode (units short of
    /// judgments, or expert jobs answered by boosted naïve majorities).
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    fn fresh_unit_id(&mut self) -> UnitId {
        let id = UnitId(self.next_unit);
        self.next_unit += 1;
        id
    }

    /// How many gold units to inject alongside `regular` regular units so
    /// that roughly `gold_fraction` of all units are gold.
    fn gold_units_for(&mut self, regular: usize) -> usize {
        if self.gold_pairs.is_empty() || self.config.gold_fraction <= 0.0 {
            return 0;
        }
        // gold / (gold + regular) ≈ fraction  =>  gold ≈ regular·f/(1−f).
        let f = self.config.gold_fraction;
        let expected = regular as f64 * f / (1.0 - f);
        let base = expected.floor() as usize;
        let remainder = expected - base as f64;
        base + usize::from(remainder > 0.0 && self.rng.gen_bool(remainder))
    }

    /// Submits a batch of pairwise comparisons (one logical step) to
    /// workers of `class` and returns the majority answer per pair, in
    /// input order. Gold units are injected automatically.
    ///
    /// # Errors
    ///
    /// Fails if the pool cannot satisfy the schedule (no eligible workers,
    /// or fewer eligible workers than judgments required per unit).
    pub fn submit_comparisons(
        &mut self,
        pairs: &[(ElementId, ElementId)],
        class: WorkerClass,
    ) -> Result<Vec<ElementId>, PlatformError> {
        match self.submit_comparisons_partial(pairs, class) {
            (answers, None) => Ok(answers),
            (_, Some(err)) => Err(err),
        }
    }

    /// Like [`submit_comparisons`](Self::submit_comparisons), but on
    /// failure the already-resolved *prefix* of answers (in input order, up
    /// to the first unresolved pair) is returned alongside the error
    /// instead of being discarded. Those comparisons were purchased —
    /// workers answered and were paid — so recovery and billing must treat
    /// them as done rather than buy them again.
    ///
    /// On success the error slot is `None` and the answer vector covers
    /// every input pair.
    pub fn submit_comparisons_partial(
        &mut self,
        pairs: &[(ElementId, ElementId)],
        class: WorkerClass,
    ) -> (Vec<ElementId>, Option<PlatformError>) {
        let mut units: Vec<Unit> = Vec::with_capacity(pairs.len());
        let mut regular_ids = Vec::with_capacity(pairs.len());
        for &(k, j) in pairs {
            let id = self.fresh_unit_id();
            regular_ids.push(id);
            units.push(Unit::regular(id, k, j));
        }
        let gold_n = self.gold_units_for(pairs.len());
        for _ in 0..gold_n {
            let &(k, j) = &self.gold_pairs[self.rng.gen_range(0..self.gold_pairs.len())];
            let answer = if self.instance.value(k) >= self.instance.value(j) {
                k
            } else {
                j
            };
            let id = self.fresh_unit_id();
            units.push(Unit::gold(id, k, j, answer));
        }
        let job = Job::new(units, self.config.judgments_per_unit);
        let result = match self.run_job(&job, class) {
            Err(PlatformError::Schedule(ScheduleError::NoEligibleWorkers { class: missing }))
                if missing == WorkerClass::Expert
                    && class == WorkerClass::Expert
                    && self.config.expert_fallback_votes > 0 =>
            {
                // Graceful degradation: the expert pool is depleted. Fall
                // back to a boosted naïve majority — the platform's
                // per-unit majority aggregation realizes the vote boost —
                // and flag the campaign degraded.
                self.record_fault(WorkerClass::Expert, FaultKind::ExpertFallback);
                self.degraded = true;
                let boosted = Job::new(
                    job.units().to_vec(),
                    self.config
                        .judgments_per_unit
                        .saturating_mul(self.config.expert_fallback_votes),
                );
                self.run_job(&boosted, WorkerClass::Naive)
            }
            other => other,
        };
        match result {
            Ok(result) => (
                regular_ids.iter().map(|id| result.answers[id]).collect(),
                None,
            ),
            Err(err) => {
                // A partially answered job still yields its completed
                // prefix: stop at the first pair whose unit stayed
                // unanswered so the prefix lines up with the scalar loop.
                let prefix = match &err {
                    PlatformError::UnitsUnanswered { answers, .. } => regular_ids
                        .iter()
                        .map_while(|id| answers.get(id).copied())
                        .collect(),
                    _ => Vec::new(),
                };
                (prefix, Some(err))
            }
        }
    }

    /// Records a fault in the campaign tally and mirrors it into the
    /// observability layer: every kind bumps the
    /// [`crowd_faults_total`](metric_names::FAULTS_TOTAL) counter, and the
    /// plain kinds emit an [`Event::FaultObserved`]. Retries and dead
    /// letters skip the generic event — their call sites emit the richer
    /// [`Event::RetryScheduled`] / [`Event::DeadLettered`] instead, so a
    /// log never reports the same incident twice.
    fn record_fault(&mut self, class: WorkerClass, kind: FaultKind) {
        self.fault_counts.record(class, kind);
        crowd_obs::counter_add(
            metric_names::FAULTS_TOTAL,
            &[("class", class_label(class)), ("kind", kind_label(kind))],
            1,
        );
        match kind {
            FaultKind::Retry | FaultKind::DeadLetter => {}
            _ => crowd_obs::emit(Event::FaultObserved { class, kind }),
        }
    }

    /// The fate of the next judgment attempt handed to `worker`, drawn
    /// from the campaign's stateless fault plan.
    fn next_fate(&mut self, worker: WorkerId) -> JudgeFate {
        let seq = self.fault_seq;
        self.fault_seq += 1;
        self.fault_plan.fate(worker, seq)
    }

    /// Executes one judgment: the worker answers, gets paid, the tally
    /// advances, and (for usable judgments on gold units) trust is scored.
    /// Timed-out judgments are real work — paid and counted — but
    /// `usable = false` keeps them out of trust scoring.
    fn perform_judgment(
        &mut self,
        unit: &Unit,
        worker: WorkerId,
        physical_step: u64,
        class: WorkerClass,
        usable: bool,
    ) -> Judgment {
        let (k, j) = unit.pair;
        let (vk, vj) = (self.instance.value(k), self.instance.value(j));
        let answer = self
            .pool
            .worker_mut(worker)
            .judge(k, vk, j, vj, &mut self.rng);
        self.ledger
            .pay(worker, class, self.config.payment.price(class));
        self.counts.record(class);
        if usable {
            if let Some(gold) = unit.gold_answer {
                self.trust.record(worker, answer == gold);
            }
        }
        Judgment {
            unit: unit.id,
            worker,
            answer,
            physical_step,
        }
    }

    /// Runs a fully specified job (one logical step): schedules it over the
    /// currently trusted workers, executes every judgment under the fault
    /// plan, pays for performed work, scores gold answers, retries failed
    /// judgments on fresh workers (capped exponential backoff), and
    /// aggregates regular units by majority over usable judgments from
    /// workers trusted *after* the job's gold scoring.
    ///
    /// # Errors
    ///
    /// Fails if the pool cannot satisfy the schedule, the budget cap is
    /// reached, or any regular unit ends with zero usable judgments after
    /// retries (the partial results stay recorded on the platform).
    pub fn run_job(&mut self, job: &Job, class: WorkerClass) -> Result<JobResult, PlatformError> {
        if let Some(cap) = self.config.budget_cap {
            if self.ledger.total() >= cap {
                let spent = self.ledger.total();
                crowd_obs::emit(Event::BudgetExhausted { cap, spent });
                return Err(PlatformError::BudgetExhausted { cap, spent });
            }
        }

        let mut excluded = self.trust.untrusted();
        excluded.extend(self.retired.iter().copied());
        // Campaign dropouts: decided once per worker by the fault plan and
        // counted the first time the worker would otherwise be eligible. A
        // zero-rate plan never excludes anyone (and does no hashing).
        if self.fault_plan.config().dropout > 0.0 {
            for w in self.pool.ids_of_class(class) {
                if !excluded.contains(&w) && self.fault_plan.dropped_out(w) {
                    if self.dropped_seen.insert(w) {
                        self.record_fault(class, FaultKind::Dropout);
                    }
                    excluded.insert(w);
                }
            }
        }

        let plan = schedule(
            &self.pool,
            job,
            class,
            &excluded,
            self.physical_clock,
            self.rotation,
        )?;
        self.rotation = self.rotation.wrapping_add(plan.assignments.len().max(1));
        self.last_assignments = plan.assignments.iter().map(|a| a.worker).collect();
        let units: HashMap<UnitId, &Unit> = job.units().iter().map(|u| (u.id, u)).collect();

        // The distinct-workers-per-unit ledger, maintained across retries.
        let mut assigned: HashMap<UnitId, HashSet<WorkerId>> = HashMap::new();
        for a in &plan.assignments {
            assigned.entry(a.unit).or_default().insert(a.worker);
        }
        // Attempts per unit (initial assignments now, retries later).
        let mut attempts_by_unit: HashMap<UnitId, u32> = HashMap::new();
        for a in &plan.assignments {
            *attempts_by_unit.entry(a.unit).or_default() += 1;
        }

        let timeout = self.fault_plan.config().timeout_steps;

        // Execute the planned assignments. `judgments` carries a `usable`
        // flag: timed-out answers are paid but never aggregated.
        let mut judgments: Vec<(Judgment, bool)> = Vec::with_capacity(plan.assignments.len());
        let mut failed_slots: Vec<UnitId> = Vec::new();
        for a in &plan.assignments {
            let unit = units[&a.unit];
            if excluded.contains(&a.worker) {
                // The worker abandoned an earlier judgment of this very
                // batch and walked away from the rest of it.
                self.record_fault(class, FaultKind::Abandon);
                failed_slots.push(a.unit);
                continue;
            }
            match self.next_fate(a.worker) {
                JudgeFate::Abandon => {
                    self.record_fault(class, FaultKind::Abandon);
                    excluded.insert(a.worker);
                    failed_slots.push(a.unit);
                }
                JudgeFate::NoAnswer => {
                    self.record_fault(class, FaultKind::NoAnswer);
                    failed_slots.push(a.unit);
                }
                JudgeFate::Answer { latency } => {
                    let usable = latency <= timeout;
                    let judgment = self.perform_judgment(
                        unit,
                        a.worker,
                        a.physical_step + latency,
                        class,
                        usable,
                    );
                    judgments.push((judgment, usable));
                    if usable {
                        crowd_obs::observe(
                            metric_names::LATENCY_STEPS,
                            &[("class", class_label(class))],
                            latency,
                        );
                    } else {
                        self.record_fault(class, FaultKind::Timeout);
                        failed_slots.push(a.unit);
                    }
                }
            }
        }

        // Retry failed judgment slots on fresh workers with capped
        // exponential backoff. Slots retry independently (in parallel, in
        // the physical-time model), so the job's extra latency is the
        // slowest slot's, not the sum.
        let policy = self.config.retry;
        let base_step = self.physical_clock + plan.physical_steps;
        let mut retries_used = 0u64;
        let mut extra_steps = 0u64;
        let mut reason_by_unit: HashMap<UnitId, DeadLetterReason> = HashMap::new();
        for unit_id in failed_slots {
            let unit = units[&unit_id];
            let mut slot_delay = 0u64;
            let mut recovered = false;
            for attempt in 1..=policy.max_retries {
                if let Some(cap) = self.config.budget_cap {
                    if self.ledger.total() >= cap {
                        // Budget exhausted mid-recovery: stop retrying and
                        // let the unit dead-letter.
                        reason_by_unit.insert(unit_id, DeadLetterReason::BudgetExhausted);
                        break;
                    }
                }
                let tried = assigned.entry(unit_id).or_default();
                let worker =
                    match reassign(&self.pool, class, &excluded, tried, unit_id, self.rotation) {
                        Ok(worker) => worker,
                        Err(ScheduleError::NoEligibleWorkers { .. }) => {
                            // Every worker of the class is excluded — the
                            // quarantine-storm signature, not a small pool.
                            reason_by_unit.insert(unit_id, DeadLetterReason::NoHealthyWorkers);
                            break;
                        }
                        Err(_) => {
                            // Healthy workers exist but each already touched
                            // this unit: no fresh worker remains.
                            reason_by_unit.insert(unit_id, DeadLetterReason::NoFreshWorkers);
                            break;
                        }
                    };
                self.rotation = self.rotation.wrapping_add(1);
                assigned.entry(unit_id).or_default().insert(worker);
                *attempts_by_unit.entry(unit_id).or_default() += 1;
                self.record_fault(class, FaultKind::Retry);
                crowd_obs::emit(Event::RetryScheduled {
                    class,
                    attempt,
                    backoff_steps: policy.backoff(attempt),
                });
                crowd_obs::gauge_set(metric_names::RETRY_DEPTH_MAX, &[], i64::from(attempt));
                retries_used += 1;
                slot_delay += policy.backoff(attempt);
                match self.next_fate(worker) {
                    JudgeFate::Abandon => {
                        self.record_fault(class, FaultKind::Abandon);
                        excluded.insert(worker);
                    }
                    JudgeFate::NoAnswer => {
                        self.record_fault(class, FaultKind::NoAnswer);
                    }
                    JudgeFate::Answer { latency } => {
                        let usable = latency <= timeout;
                        let judgment = self.perform_judgment(
                            unit,
                            worker,
                            base_step + slot_delay + latency,
                            class,
                            usable,
                        );
                        judgments.push((judgment, usable));
                        if usable {
                            crowd_obs::observe(
                                metric_names::LATENCY_STEPS,
                                &[("class", class_label(class))],
                                latency,
                            );
                            slot_delay += latency;
                            recovered = true;
                            break;
                        }
                        self.record_fault(class, FaultKind::Timeout);
                    }
                }
            }
            if recovered {
                extra_steps = extra_steps.max(slot_delay);
            }
        }

        // Units still short of judgments after retries are degraded and
        // dead-lettered.
        let needed = job.judgments_per_unit() as usize;
        let mut usable_per_unit: HashMap<UnitId, usize> = HashMap::new();
        for (jd, usable) in &judgments {
            if *usable {
                *usable_per_unit.entry(jd.unit).or_default() += 1;
            }
        }
        let mut degraded_units = Vec::new();
        let mut dead_letters_here = 0u64;
        for unit in job.units() {
            let got = usable_per_unit.get(&unit.id).copied().unwrap_or(0);
            let attempts = attempts_by_unit.get(&unit.id).copied().unwrap_or(0);
            crowd_obs::observe(
                metric_names::RETRY_DEPTH,
                &[("class", class_label(class))],
                u64::from(attempts),
            );
            if got < needed {
                let reason = reason_by_unit
                    .get(&unit.id)
                    .copied()
                    .unwrap_or(DeadLetterReason::RetriesExhausted);
                degraded_units.push(unit.id);
                self.degraded = true;
                self.record_fault(class, FaultKind::DeadLetter);
                crowd_obs::emit(Event::DeadLettered {
                    class,
                    attempts,
                    reason,
                });
                crowd_obs::counter_add(
                    metric_names::DEAD_LETTERS_TOTAL,
                    &[
                        ("class", class_label(class)),
                        ("reason", crowd_obs::reason_label(reason)),
                    ],
                    1,
                );
                self.dead_letters.push(DeadLetter {
                    unit: unit.id,
                    pair: unit.pair,
                    class,
                    attempts,
                    logical_step: self.logical_steps,
                    reason,
                });
                dead_letters_here += 1;
            }
        }

        // Aggregate regular units by majority over usable judgments.
        let now_untrusted = self.trust.untrusted();
        let mut answers = HashMap::new();
        let mut unanswered: Vec<UnitId> = Vec::new();
        for unit in job.units().iter().filter(|u| !u.is_gold()) {
            let (k, j) = unit.pair;
            let votes: Vec<ElementId> = judgments
                .iter()
                .filter(|(jd, usable)| {
                    *usable && jd.unit == unit.id && !now_untrusted.contains(&jd.worker)
                })
                .map(|(jd, _)| jd.answer)
                .collect();
            // If quality control discarded everything, fall back to all
            // usable judgments — the requester still needs an answer.
            let votes = if votes.is_empty() {
                judgments
                    .iter()
                    .filter(|(jd, usable)| *usable && jd.unit == unit.id)
                    .map(|(jd, _)| jd.answer)
                    .collect()
            } else {
                votes
            };
            if votes.is_empty() {
                // Nothing usable at all: never fabricate an answer.
                unanswered.push(unit.id);
                continue;
            }
            let k_votes = votes.iter().filter(|&&a| a == k).count();
            let j_votes = votes.len() - k_votes;
            let winner = if k_votes > j_votes || (k_votes == j_votes && k < j) {
                k
            } else {
                j
            };
            answers.insert(unit.id, winner);
        }

        let physical_steps = plan.physical_steps + extra_steps;
        self.physical_clock += physical_steps;
        self.logical_steps += 1;
        if !unanswered.is_empty() {
            // The job's partial results (payments, trust, dead letters)
            // stay recorded; the resolved answers ride along in the error
            // so nothing already purchased has to be bought twice.
            return Err(PlatformError::UnitsUnanswered {
                units: unanswered,
                attempts: 1 + policy.max_retries,
                answers,
            });
        }
        Ok(JobResult {
            answers,
            judgments: judgments.into_iter().map(|(jd, _)| jd).collect(),
            physical_steps,
            excluded_workers: now_untrusted.into_iter().collect(),
            degraded_units,
            retries: retries_used,
            dead_letters: dead_letters_here,
        })
    }
}

/// Adapts a [`Platform`] to `crowd-core`'s [`ComparisonOracle`], so the
/// Section 4 algorithms can run on the full simulator.
///
/// Every `compare` call is one logical step containing a single unit
/// (sequential algorithms cannot batch — each comparison may depend on the
/// previous answer).
#[derive(Debug)]
pub struct PlatformOracle<R: RngCore> {
    platform: Platform<R>,
}

impl<R: RngCore> PlatformOracle<R> {
    /// Wraps a platform.
    pub fn new(platform: Platform<R>) -> Self {
        PlatformOracle { platform }
    }

    /// The wrapped platform (e.g. to inspect the ledger afterwards).
    pub fn platform(&self) -> &Platform<R> {
        &self.platform
    }

    /// Consumes the adapter, returning the platform.
    pub fn into_platform(self) -> Platform<R> {
        self.platform
    }
}

impl<R: RngCore> ComparisonOracle for PlatformOracle<R> {
    /// Infallible trait surface. Callers that must not panic on an
    /// undersized or exhausted pool use [`Self::try_compare`], which
    /// returns the typed [`OracleError`] instead.
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        self.try_compare(class, k, j)
            .expect("the platform pool cannot satisfy a single comparison")
    }

    fn try_compare(
        &mut self,
        class: WorkerClass,
        k: ElementId,
        j: ElementId,
    ) -> Result<ElementId, OracleError> {
        self.platform
            .submit_comparisons(&[(k, j)], class)
            .map(|answers| answers[0])
            .map_err(|err| err.to_oracle_error(class))
    }

    /// Batch adapter for the billing layer: the whole batch becomes *one*
    /// [`Platform::submit_comparisons`] job, so the budget check, worker
    /// schedule, gold injection, and per-judgment billing run once per
    /// batch instead of once per comparison. Answers and tallies match the
    /// scalar loop for a fault-free workforce; the job structure
    /// necessarily differs (one logical step for the batch instead of one
    /// per pair — that is the amortization), and a faulting batch still
    /// yields the completed prefix of answers alongside the error.
    fn compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) {
        self.try_compare_batch(class, pairs, winners)
            .expect("the platform pool cannot satisfy a comparison batch");
    }

    /// See [`compare_batch`](Self::compare_batch). On `Err` the completed
    /// *prefix* of answers is appended before the error is reported: those
    /// comparisons were purchased from real workers, so discarding them
    /// would make recovery (and billing) buy them a second time. Only the
    /// unresolved suffix is left to the caller's error handling.
    fn try_compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) -> Result<(), OracleError> {
        if pairs.is_empty() {
            return Ok(());
        }
        let (answers, err) = self.platform.submit_comparisons_partial(pairs, class);
        winners.extend(answers);
        match err {
            None => Ok(()),
            Some(err) => Err(err.to_oracle_error(class)),
        }
    }

    fn counts(&self) -> ComparisonCounts {
        self.platform.counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{Behavior, SpamStrategy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance() -> Instance {
        Instance::new(vec![10.0, 20.0, 30.0, 40.0, 50.0])
    }

    fn honest_pool(n: usize) -> WorkerPool {
        let mut p = WorkerPool::new();
        p.hire_naive_crowd(n, 0.0, 0.0); // perfect naïve workers
        p.hire_expert_panel(3, 0.0, 0.0);
        p
    }

    fn platform(pool: WorkerPool, config: PlatformConfig, seed: u64) -> Platform<StdRng> {
        Platform::new(instance(), pool, config, StdRng::seed_from_u64(seed))
    }

    #[test]
    fn submit_returns_answers_in_order() {
        let mut p = platform(
            honest_pool(5),
            PlatformConfig::paper_default().without_gold(),
            1,
        );
        let answers = p
            .submit_comparisons(
                &[(ElementId(0), ElementId(4)), (ElementId(3), ElementId(1))],
                WorkerClass::Naive,
            )
            .unwrap();
        assert_eq!(answers, vec![ElementId(4), ElementId(3)]);
    }

    #[test]
    fn payments_match_judgments() {
        let cfg = PlatformConfig::paper_default()
            .without_gold()
            .with_judgments_per_unit(3)
            .with_payment(CostModel::new(2.0, 20.0));
        let mut p = platform(honest_pool(5), cfg, 2);
        p.submit_comparisons(&[(ElementId(0), ElementId(1))], WorkerClass::Naive)
            .unwrap();
        assert_eq!(p.ledger().judgments(), 3);
        assert_eq!(p.ledger().total(), 6.0);
        assert_eq!(p.counts().naive, 3);
        p.submit_comparisons(&[(ElementId(0), ElementId(1))], WorkerClass::Expert)
            .unwrap();
        assert_eq!(p.ledger().total(), 6.0 + 3.0 * 20.0); // 3 expert judgments at 20 each
    }

    #[test]
    fn gold_units_are_injected_and_scored() {
        let mut cfg = PlatformConfig::paper_default();
        cfg.gold_fraction = 0.5;
        let mut p = platform(honest_pool(10), cfg, 3);
        p.set_gold_pairs(vec![(ElementId(0), ElementId(4))]);
        // Submit enough batches that gold questions certainly appear.
        for _ in 0..20 {
            p.submit_comparisons(&[(ElementId(1), ElementId(2))], WorkerClass::Naive)
                .unwrap();
        }
        let scored: u32 = (0..12u32)
            .map(|i| p.trust().record_of(WorkerId(i)).seen)
            .sum();
        assert!(scored > 0, "no gold judgments were recorded");
    }

    #[test]
    fn spammers_get_filtered_by_gold() {
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(6, 0.0, 0.0);
        // A spammer who always picks the first element shown.
        let spammer = pool.hire(
            WorkerClass::Naive,
            "spam",
            Behavior::Spammer(SpamStrategy::AlwaysSecond),
        );
        let mut cfg = PlatformConfig::paper_default().with_judgments_per_unit(5);
        cfg.gold_fraction = 0.6;
        cfg.min_gold = 2;
        let mut p = platform(pool, cfg, 4);
        // Gold pairs presented as (higher, lower): AlwaysSecond always fails.
        p.set_gold_pairs(vec![
            (ElementId(4), ElementId(0)),
            (ElementId(3), ElementId(0)),
            (ElementId(4), ElementId(1)),
        ]);
        for _ in 0..30 {
            p.submit_comparisons(&[(ElementId(2), ElementId(3))], WorkerClass::Naive)
                .unwrap();
        }
        assert!(
            !p.trust().is_trusted(spammer),
            "the spammer should have been flagged: {:?}",
            p.trust().record_of(spammer)
        );
    }

    #[test]
    fn logical_and_physical_clocks_advance() {
        let cfg = PlatformConfig::paper_default()
            .without_gold()
            .with_judgments_per_unit(3);
        let mut p = platform(honest_pool(3), cfg, 5);
        // 2 units × 3 judgments over 5 naive workers... pool has 3 naive.
        p.submit_comparisons(
            &[(ElementId(0), ElementId(1)), (ElementId(2), ElementId(3))],
            WorkerClass::Naive,
        )
        .unwrap();
        assert_eq!(p.logical_steps(), 1);
        assert_eq!(p.physical_clock(), 2); // ⌈6/3⌉
    }

    #[test]
    fn oracle_adapter_drives_core_algorithms() {
        use crowd_core::algorithms::{expert_max_find, ExpertMaxConfig};
        let inst = Instance::new((0..60).map(|i| i as f64 * 10.0).collect());
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(10, 0.0, 0.0);
        pool.hire_expert_panel(3, 0.0, 0.0);
        let platform = Platform::new(
            inst.clone(),
            pool,
            PlatformConfig::paper_default().without_gold(),
            StdRng::seed_from_u64(6),
        );
        let mut oracle = PlatformOracle::new(platform);
        let mut rng = StdRng::seed_from_u64(7);
        let out = expert_max_find(&mut oracle, &inst.ids(), &ExpertMaxConfig::new(2), &mut rng);
        assert_eq!(out.winner, inst.max_element());
        let platform = oracle.into_platform();
        assert!(platform.ledger().total() > 0.0);
        assert_eq!(platform.ledger().judgments(), platform.counts().total());
    }

    #[test]
    fn schedule_failure_propagates() {
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(2, 0.0, 0.0); // no experts at all
        let mut p = Platform::new(
            instance(),
            pool,
            PlatformConfig::paper_default().without_gold(),
            StdRng::seed_from_u64(8),
        );
        let err = p
            .submit_comparisons(&[(ElementId(0), ElementId(1))], WorkerClass::Expert)
            .unwrap_err();
        assert!(matches!(
            err,
            PlatformError::Schedule(ScheduleError::NoEligibleWorkers { .. })
        ));
        assert_eq!(
            err.to_oracle_error(WorkerClass::Expert),
            OracleError::WorkforceDepleted {
                class: WorkerClass::Expert
            }
        );
    }

    #[test]
    fn churn_hire_and_retire_mid_campaign() {
        let mut p = platform(
            honest_pool(3),
            PlatformConfig::paper_default().without_gold(),
            11,
        );
        // Retire two of the three naive workers: work continues on one.
        p.retire_worker(WorkerId(0));
        p.retire_worker(WorkerId(1));
        p.submit_comparisons(&[(ElementId(0), ElementId(4))], WorkerClass::Naive)
            .unwrap();
        assert_eq!(p.ledger().earned_by(WorkerId(0)), 0.0);
        assert_eq!(p.ledger().earned_by(WorkerId(1)), 0.0);
        assert!(p.ledger().earned_by(WorkerId(2)) > 0.0);

        // Retire the last one: naive jobs now fail ...
        p.retire_worker(WorkerId(2));
        assert!(p
            .submit_comparisons(&[(ElementId(0), ElementId(4))], WorkerClass::Naive)
            .is_err());

        // ... until a new hire arrives.
        let fresh = p.hire_worker(
            WorkerClass::Naive,
            "late-arrival",
            Behavior::Threshold {
                delta: 0.0,
                epsilon: 0.0,
                tie: crowd_core::model::TiePolicy::UniformRandom,
            },
        );
        let answers = p
            .submit_comparisons(&[(ElementId(0), ElementId(4))], WorkerClass::Naive)
            .unwrap();
        assert_eq!(answers, vec![ElementId(4)]);
        assert!(p.ledger().earned_by(fresh) > 0.0);
        assert_eq!(p.retired_workers().len(), 3);
    }

    #[test]
    #[should_panic(expected = "distinct elements")]
    fn gold_pair_with_duplicate_panics() {
        let mut p = platform(honest_pool(3), PlatformConfig::paper_default(), 9);
        p.set_gold_pairs(vec![(ElementId(0), ElementId(0))]);
    }

    /// Replays the pre-fault-layer `run_job` execution loop by hand: same
    /// scheduling, same judge/pay/count/gold order. A zero-fault platform
    /// must produce byte-identical answers, judgments, clocks, and ledger
    /// state — the fault layer is a strict superset.
    #[test]
    fn zero_fault_plan_is_invisible() {
        use crate::scheduler::schedule as plan_schedule;
        let inst = Instance::new((0..12).map(|i| i as f64).collect());
        let pairs: Vec<(ElementId, ElementId)> = (0..6)
            .map(|i| (ElementId(2 * i), ElementId(2 * i + 1)))
            .collect();
        let cfg = PlatformConfig::paper_default()
            .without_gold()
            .with_judgments_per_unit(3);

        // The faulty-capable platform under a zero-rate plan.
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(5, 2.0, 0.1);
        let mut p = Platform::new(inst.clone(), pool, cfg.clone(), StdRng::seed_from_u64(77));
        let result = p.submit_comparisons(&pairs, WorkerClass::Naive).unwrap();

        // The same run replayed without any fault machinery.
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(5, 2.0, 0.1);
        let mut rng = StdRng::seed_from_u64(77);
        let units: Vec<Unit> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(k, j))| Unit::regular(UnitId(i as u32), k, j))
            .collect();
        let job = Job::new(units, cfg.judgments_per_unit);
        let plan = plan_schedule(&pool, &job, WorkerClass::Naive, &HashSet::new(), 0, 0).unwrap();
        let mut expected: HashMap<UnitId, Vec<ElementId>> = HashMap::new();
        for a in &plan.assignments {
            let unit = &job.units()[a.unit.0 as usize];
            let (k, j) = unit.pair;
            let answer =
                pool.worker_mut(a.worker)
                    .judge(k, inst.value(k), j, inst.value(j), &mut rng);
            expected.entry(a.unit).or_default().push(answer);
        }
        let reference: Vec<ElementId> = job
            .units()
            .iter()
            .map(|u| {
                let votes = &expected[&u.id];
                let (k, j) = u.pair;
                let k_votes = votes.iter().filter(|&&a| a == k).count();
                if k_votes > votes.len() - k_votes || (2 * k_votes == votes.len() && k < j) {
                    k
                } else {
                    j
                }
            })
            .collect();

        assert_eq!(result, reference, "fault layer perturbed a zero-fault run");
        assert_eq!(p.fault_counts().total(), 0);
        assert!(p.dead_letters().is_empty());
        assert!(!p.degraded());
        assert_eq!(p.physical_clock(), plan.physical_steps);
    }

    #[test]
    fn budget_cap_refuses_new_jobs_with_partial_state() {
        let cfg = PlatformConfig::paper_default()
            .without_gold()
            .with_payment(CostModel::new(1.0, 10.0))
            .with_budget_cap(3.0);
        let mut p = platform(honest_pool(5), cfg, 21);
        // Three 1-judgment jobs at price 1 reach the cap.
        for _ in 0..3 {
            p.submit_comparisons(&[(ElementId(0), ElementId(1))], WorkerClass::Naive)
                .unwrap();
        }
        let err = p
            .submit_comparisons(&[(ElementId(0), ElementId(1))], WorkerClass::Naive)
            .unwrap_err();
        assert!(matches!(err, PlatformError::BudgetExhausted { .. }));
        assert_eq!(
            err.to_oracle_error(WorkerClass::Naive),
            OracleError::BudgetExhausted
        );
        // The partial campaign state survives for reporting.
        assert_eq!(p.ledger().total(), 3.0);
        assert_eq!(p.counts().naive, 3);
        let report = crate::report::CampaignReport::from_platform(&p);
        assert_eq!(report.judgments, 3);
    }

    #[test]
    fn expert_depletion_falls_back_to_boosted_naive_majority() {
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(5, 0.0, 0.0); // perfect naive workers, no experts
        let cfg = PlatformConfig::paper_default()
            .without_gold()
            .with_expert_fallback(3);
        let mut p = platform(pool, cfg, 31);
        let answers = p
            .submit_comparisons(&[(ElementId(1), ElementId(4))], WorkerClass::Expert)
            .unwrap();
        assert_eq!(answers, vec![ElementId(4)]);
        assert!(p.degraded(), "the fallback must flag the campaign degraded");
        assert_eq!(p.fault_counts().expert.expert_fallbacks, 1);
        // The boosted job collected 3 naive judgments (1 × 3 votes).
        assert_eq!(p.counts().naive, 3);
        assert_eq!(p.counts().expert, 0);
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn even_fallback_votes_panic() {
        let _ = PlatformConfig::paper_default().with_expert_fallback(2);
    }

    #[test]
    fn transient_no_answer_faults_retry_on_fresh_workers() {
        use crate::fault::FaultConfig;
        let cfg = PlatformConfig::paper_default()
            .without_gold()
            .with_faults(FaultConfig::none().with_no_answer(0.4), 5);
        let mut p = platform(honest_pool(8), cfg, 41);
        let mut retries_seen = 0u64;
        for i in 0..20 {
            let pair = (ElementId(i % 4), ElementId(4));
            let answers = p.submit_comparisons(&[pair], WorkerClass::Naive);
            // Honest workers: when an answer arrives it is correct.
            if let Ok(answers) = answers {
                assert_eq!(answers, vec![ElementId(4)]);
            }
            retries_seen = p.fault_counts().naive.retries;
        }
        assert!(
            p.fault_counts().naive.no_answers > 0,
            "a 40% no-answer rate must fire in 20 jobs"
        );
        assert!(retries_seen > 0, "failed judgments must be retried");
        // Every paid judgment was performed: the billing invariant holds
        // under faults too.
        assert_eq!(p.ledger().judgments(), p.counts().total());
    }

    #[test]
    fn exhausted_retries_dead_letter_instead_of_fabricating() {
        use crate::fault::FaultConfig;
        // Everyone refuses to answer: every unit must dead-letter and the
        // job must fail with UnitsUnanswered, not fabricate an answer.
        let cfg = PlatformConfig::paper_default()
            .without_gold()
            .with_faults(FaultConfig::none().with_no_answer(1.0), 6);
        let mut p = platform(honest_pool(6), cfg, 51);
        let err = p
            .submit_comparisons(&[(ElementId(0), ElementId(1))], WorkerClass::Naive)
            .unwrap_err();
        match &err {
            PlatformError::UnitsUnanswered {
                units,
                attempts,
                answers,
            } => {
                assert_eq!(units.len(), 1);
                assert_eq!(*attempts, 1 + p.config().retry.max_retries);
                assert!(answers.is_empty(), "nothing resolved, so no prefix");
            }
            other => panic!("expected UnitsUnanswered, got {other:?}"),
        }
        assert!(matches!(
            err.to_oracle_error(WorkerClass::Naive),
            OracleError::Unanswered { .. }
        ));
        assert_eq!(p.dead_letters().len(), 1);
        assert_eq!(p.fault_counts().naive.dead_letters, 1);
        assert!(p.degraded());
        // Nothing was performed, so nothing was paid.
        assert_eq!(p.ledger().judgments(), 0);
    }

    #[test]
    fn retry_recovery_degrades_gracefully_when_the_fresh_pool_exhausts() {
        use crate::fault::FaultConfig;
        // Every judgment no-answers and the policy allows far more
        // retries than there are fresh workers. The recovery loop must
        // stop when `scheduler::reassign` runs out of workers that have
        // not touched the unit — degrading to a dead letter, not looping.
        let cfg = PlatformConfig::paper_default()
            .without_gold()
            .with_faults(FaultConfig::none().with_no_answer(1.0), 3)
            .with_retry(RetryPolicy::paper_default().with_max_retries(1000));
        let mut p = platform(honest_pool(3), cfg, 21);
        let err = p
            .submit_comparisons(&[(ElementId(0), ElementId(1))], WorkerClass::Naive)
            .unwrap_err();
        assert!(matches!(err, PlatformError::UnitsUnanswered { .. }));
        // Attempts are bounded by the pool (1 initial + 2 fresh workers),
        // not by the 1000-retry policy.
        assert_eq!(p.fault_counts().naive.retries, 2);
        assert_eq!(p.dead_letters().len(), 1);
        assert_eq!(p.dead_letters()[0].attempts, 3);
        assert!(p.degraded());
    }

    #[test]
    fn partial_batches_keep_their_answered_prefix() {
        use crate::fault::FaultConfig;
        let pairs = [
            (ElementId(0), ElementId(4)),
            (ElementId(1), ElementId(3)),
            (ElementId(2), ElementId(4)),
        ];
        // Ground-truth winners of those pairs, for honest workers.
        let expect = [ElementId(4), ElementId(3), ElementId(4)];
        let mut saw_partial = false;
        for fault_seed in 0..64 {
            let cfg = PlatformConfig::paper_default()
                .without_gold()
                .with_faults(FaultConfig::none().with_no_answer(0.5), fault_seed)
                .with_retry(RetryPolicy::none());
            let mut p = platform(honest_pool(3), cfg, 11);
            let (answers, err) = p.submit_comparisons_partial(&pairs, WorkerClass::Naive);
            match err {
                None => assert_eq!(answers, expect.to_vec()),
                Some(PlatformError::UnitsUnanswered { .. }) => {
                    // The prefix stops at the first unanswered pair, and
                    // everything in it is a real (purchased) answer.
                    assert!(answers.len() < pairs.len());
                    assert_eq!(answers[..], expect[..answers.len()]);
                    if !answers.is_empty() {
                        saw_partial = true;
                    }
                }
                Some(other) => panic!("unexpected platform error: {other:?}"),
            }
        }
        assert!(
            saw_partial,
            "64 fault seeds must produce at least one non-empty prefix"
        );
    }

    #[test]
    fn oracle_batches_append_the_prefix_before_the_error() {
        use crate::fault::FaultConfig;
        let pairs = [
            (ElementId(0), ElementId(4)),
            (ElementId(1), ElementId(3)),
            (ElementId(2), ElementId(4)),
        ];
        let expect = [ElementId(4), ElementId(3), ElementId(4)];
        let mut saw_partial = false;
        for fault_seed in 0..64 {
            let cfg = PlatformConfig::paper_default()
                .without_gold()
                .with_faults(FaultConfig::none().with_no_answer(0.5), fault_seed)
                .with_retry(RetryPolicy::none());
            let mut oracle = PlatformOracle::new(platform(honest_pool(3), cfg, 11));
            let mut winners = vec![ElementId(9)]; // pre-existing content survives
            match oracle.try_compare_batch(WorkerClass::Naive, &pairs, &mut winners) {
                Ok(()) => assert_eq!(winners[1..], expect[..]),
                Err(err) => {
                    assert!(matches!(err, OracleError::Unanswered { .. }));
                    assert_eq!(winners[1..], expect[..winners.len() - 1]);
                    if winners.len() > 1 {
                        saw_partial = true;
                    }
                }
            }
            assert_eq!(winners[0], ElementId(9));
        }
        assert!(
            saw_partial,
            "64 fault seeds must produce at least one non-empty prefix"
        );
    }

    #[test]
    fn dropped_out_workers_never_receive_assignments() {
        use crate::fault::FaultConfig;
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(20, 0.0, 0.0);
        let cfg = PlatformConfig::paper_default()
            .without_gold()
            .with_faults(FaultConfig::none().with_dropout(0.4), 9);
        let mut p = platform(pool, cfg, 61);
        for _ in 0..10 {
            p.submit_comparisons(&[(ElementId(0), ElementId(4))], WorkerClass::Naive)
                .unwrap();
        }
        let dropped: Vec<WorkerId> = (0..20)
            .map(WorkerId)
            .filter(|w| p.fault_plan.dropped_out(*w))
            .collect();
        assert!(!dropped.is_empty(), "a 40% dropout rate must fire");
        for w in &dropped {
            assert_eq!(
                p.ledger().earned_by(*w),
                0.0,
                "dropout {w} must never be assigned work"
            );
        }
        assert_eq!(p.fault_counts().naive.dropouts, dropped.len() as u64);
    }

    #[test]
    fn retry_reassignment_preserves_distinct_workers_per_unit() {
        use crate::fault::{FaultConfig, LatencyModel};
        // High fault pressure: abandonment, no-answers and timeouts all on.
        let cfg = PlatformConfig::paper_default()
            .without_gold()
            .with_judgments_per_unit(2)
            .with_faults(
                FaultConfig::none()
                    .with_abandon(0.15)
                    .with_no_answer(0.25)
                    .with_latency(LatencyModel::Geometric { p: 0.6, cap: 10 })
                    .with_timeout_steps(3),
                13,
            );
        let mut p = platform(honest_pool(10), cfg, 71);
        for i in 0..15 {
            let job = Job::from_pairs(&[(ElementId(i % 4), ElementId(4))], 2);
            if let Ok(result) = p.run_job(&job, WorkerClass::Naive) {
                // No unit of this job was judged twice by the same worker
                // — including judgments produced by retry re-assignment.
                // (Unit ids restart per job, so the check is per job.)
                let mut seen: HashMap<UnitId, HashSet<WorkerId>> = HashMap::new();
                for j in &result.judgments {
                    assert!(
                        seen.entry(j.unit).or_default().insert(j.worker),
                        "unit {:?} judged twice by {}",
                        j.unit,
                        j.worker
                    );
                }
            }
        }
        assert!(
            p.fault_counts().naive.retries > 0,
            "fault pressure must trigger retries: {:?}",
            p.fault_counts().naive
        );
        assert_eq!(p.ledger().judgments(), p.counts().total());
    }
}
