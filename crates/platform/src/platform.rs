//! The platform facade: jobs in, quality-controlled answers out.
//!
//! [`Platform`] plays the role CrowdFlower plays in the paper's
//! experiments: it owns the workforce, schedules batches over logical and
//! physical steps, interleaves gold questions (15% by default), scores
//! worker trust, discards responses of workers below the 70% gold-accuracy
//! bar, pays per judgment, and aggregates the surviving judgments per unit
//! by majority vote.
//!
//! [`PlatformOracle`] adapts a platform to `crowd-core`'s
//! [`ComparisonOracle`], so the Section 4 algorithms can run unmodified on
//! top of the full simulator — this is how the paper's CrowdFlower
//! experiments (Tables 1–2, Section 5.3) are reproduced.

use crate::billing::Ledger;
use crate::pool::WorkerPool;
use crate::quality::TrustTracker;
use crate::scheduler::{schedule, ScheduleError};
use crate::task::{Job, Judgment, Unit, UnitId};
use crate::worker::WorkerId;
use crowd_core::cost::CostModel;
use crowd_core::element::{ElementId, Instance};
use crowd_core::model::WorkerClass;
use crowd_core::oracle::{ComparisonCounts, ComparisonOracle};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Platform-wide configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Judgments collected per unit (the paper requests "at least 21
    /// answers" per pair in the calibration experiments, and single
    /// judgments when driving algorithms).
    pub judgments_per_unit: u32,
    /// Fraction of gold units injected into each job (paper: 15%).
    pub gold_fraction: f64,
    /// Per-judgment pay for each class.
    pub payment: CostModel,
    /// Gold accuracy below which a worker's responses are ignored.
    pub trust_threshold: f64,
    /// Gold judgments before the threshold is enforced.
    pub min_gold: u32,
}

impl PlatformConfig {
    /// The paper's CrowdFlower-like setup: single judgments, 15% gold,
    /// 70% trust threshold.
    pub fn paper_default() -> Self {
        PlatformConfig {
            judgments_per_unit: 1,
            gold_fraction: 0.15,
            payment: CostModel::with_ratio(10.0),
            trust_threshold: 0.7,
            min_gold: 3,
        }
    }

    /// Sets the judgments collected per unit.
    pub fn with_judgments_per_unit(mut self, j: u32) -> Self {
        self.judgments_per_unit = j;
        self
    }

    /// Sets the per-judgment payments.
    pub fn with_payment(mut self, payment: CostModel) -> Self {
        self.payment = payment;
        self
    }

    /// Disables gold injection (for controlled experiments).
    pub fn without_gold(mut self) -> Self {
        self.gold_fraction = 0.0;
        self
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig::paper_default()
    }
}

/// The outcome of running one job (one logical step).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Majority answer per regular unit (gold units are not reported —
    /// the requester already knows their answers).
    pub answers: HashMap<UnitId, ElementId>,
    /// Every judgment produced, including on gold units and by workers
    /// later flagged as spammers.
    pub judgments: Vec<Judgment>,
    /// Physical steps the job consumed.
    pub physical_steps: u64,
    /// Workers whose responses were ignored during aggregation.
    pub excluded_workers: Vec<WorkerId>,
}

/// The simulated crowdsourcing platform.
#[derive(Debug)]
pub struct Platform<R: RngCore> {
    instance: Instance,
    pool: WorkerPool,
    config: PlatformConfig,
    trust: TrustTracker,
    ledger: Ledger,
    rng: R,
    gold_pairs: Vec<(ElementId, ElementId)>,
    physical_clock: u64,
    logical_steps: u64,
    counts: ComparisonCounts,
    next_unit: u32,
    /// Rotating dealing offset so consecutive jobs spread across the pool.
    rotation: usize,
    /// Workers retired mid-campaign: they keep their history but receive
    /// no further assignments.
    retired: HashSet<WorkerId>,
}

impl<R: RngCore> Platform<R> {
    /// Builds a platform over the ground-truth `instance` with the given
    /// workforce.
    pub fn new(instance: Instance, pool: WorkerPool, config: PlatformConfig, rng: R) -> Self {
        let trust = TrustTracker::new(config.trust_threshold, config.min_gold);
        Platform {
            instance,
            pool,
            config,
            trust,
            ledger: Ledger::new(),
            rng,
            gold_pairs: Vec::new(),
            physical_clock: 0,
            logical_steps: 0,
            counts: ComparisonCounts::zero(),
            next_unit: 0,
            rotation: 0,
            retired: HashSet::new(),
        }
    }

    /// Hires one more worker mid-campaign; she becomes eligible from the
    /// next job on. Crowd platforms see constant churn — workers arrive
    /// and leave while a campaign runs.
    pub fn hire_worker(
        &mut self,
        class: WorkerClass,
        channel: &str,
        behavior: crate::worker::Behavior,
    ) -> WorkerId {
        self.pool.hire(class, channel, behavior)
    }

    /// Retires a worker: her earnings and trust history remain on the
    /// books, but she receives no further assignments. Idempotent.
    pub fn retire_worker(&mut self, worker: WorkerId) {
        self.retired.insert(worker);
    }

    /// Workers retired so far.
    pub fn retired_workers(&self) -> &HashSet<WorkerId> {
        &self.retired
    }

    /// Registers gold pairs: comparisons whose correct answer the requester
    /// knows (answers are derived from the instance's ground truth, which
    /// is exactly what makes them gold).
    ///
    /// # Panics
    ///
    /// Panics if a pair repeats an element.
    pub fn set_gold_pairs(&mut self, pairs: Vec<(ElementId, ElementId)>) {
        for &(k, j) in &pairs {
            assert_ne!(k, j, "a gold pair must compare distinct elements");
        }
        self.gold_pairs = pairs;
    }

    /// The ground-truth instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The payment ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The trust tracker.
    pub fn trust(&self) -> &TrustTracker {
        &self.trust
    }

    /// The worker pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Physical steps elapsed across all jobs.
    pub fn physical_clock(&self) -> u64 {
        self.physical_clock
    }

    /// Logical steps (jobs) executed.
    pub fn logical_steps(&self) -> u64 {
        self.logical_steps
    }

    /// Total worker judgments by class.
    pub fn counts(&self) -> ComparisonCounts {
        self.counts
    }

    fn fresh_unit_id(&mut self) -> UnitId {
        let id = UnitId(self.next_unit);
        self.next_unit += 1;
        id
    }

    /// How many gold units to inject alongside `regular` regular units so
    /// that roughly `gold_fraction` of all units are gold.
    fn gold_units_for(&mut self, regular: usize) -> usize {
        if self.gold_pairs.is_empty() || self.config.gold_fraction <= 0.0 {
            return 0;
        }
        // gold / (gold + regular) ≈ fraction  =>  gold ≈ regular·f/(1−f).
        let f = self.config.gold_fraction;
        let expected = regular as f64 * f / (1.0 - f);
        let base = expected.floor() as usize;
        let remainder = expected - base as f64;
        base + usize::from(remainder > 0.0 && self.rng.gen_bool(remainder))
    }

    /// Submits a batch of pairwise comparisons (one logical step) to
    /// workers of `class` and returns the majority answer per pair, in
    /// input order. Gold units are injected automatically.
    ///
    /// # Errors
    ///
    /// Fails if the pool cannot satisfy the schedule (no eligible workers,
    /// or fewer eligible workers than judgments required per unit).
    pub fn submit_comparisons(
        &mut self,
        pairs: &[(ElementId, ElementId)],
        class: WorkerClass,
    ) -> Result<Vec<ElementId>, ScheduleError> {
        let mut units: Vec<Unit> = Vec::with_capacity(pairs.len());
        let mut regular_ids = Vec::with_capacity(pairs.len());
        for &(k, j) in pairs {
            let id = self.fresh_unit_id();
            regular_ids.push(id);
            units.push(Unit::regular(id, k, j));
        }
        let gold_n = self.gold_units_for(pairs.len());
        for _ in 0..gold_n {
            let &(k, j) = &self.gold_pairs[self.rng.gen_range(0..self.gold_pairs.len())];
            let answer = if self.instance.value(k) >= self.instance.value(j) {
                k
            } else {
                j
            };
            let id = self.fresh_unit_id();
            units.push(Unit::gold(id, k, j, answer));
        }
        let job = Job::new(units, self.config.judgments_per_unit);
        let result = self.run_job(&job, class)?;
        Ok(regular_ids.iter().map(|id| result.answers[id]).collect())
    }

    /// Runs a fully specified job (one logical step): schedules it over the
    /// currently trusted workers, executes every judgment, pays for it,
    /// scores gold answers, and aggregates regular units by majority over
    /// judgments from workers trusted *after* the job's gold scoring.
    ///
    /// # Errors
    ///
    /// Fails if the pool cannot satisfy the schedule.
    pub fn run_job(&mut self, job: &Job, class: WorkerClass) -> Result<JobResult, ScheduleError> {
        let mut excluded = self.trust.untrusted();
        excluded.extend(self.retired.iter().copied());
        let plan = schedule(
            &self.pool,
            job,
            class,
            &excluded,
            self.physical_clock,
            self.rotation,
        )?;
        self.rotation = self.rotation.wrapping_add(plan.assignments.len().max(1));
        let units: HashMap<UnitId, &Unit> = job.units().iter().map(|u| (u.id, u)).collect();

        // Execute.
        let mut judgments = Vec::with_capacity(plan.assignments.len());
        for a in &plan.assignments {
            let unit = units[&a.unit];
            let (k, j) = unit.pair;
            let (vk, vj) = (self.instance.value(k), self.instance.value(j));
            let answer = self
                .pool
                .worker_mut(a.worker)
                .judge(k, vk, j, vj, &mut self.rng);
            self.ledger
                .pay(a.worker, class, self.config.payment.price(class));
            self.counts.record(class);
            if let Some(gold) = unit.gold_answer {
                self.trust.record(a.worker, answer == gold);
            }
            judgments.push(Judgment {
                unit: a.unit,
                worker: a.worker,
                answer,
                physical_step: a.physical_step,
            });
        }

        // Aggregate regular units by majority over trusted judgments.
        let now_untrusted = self.trust.untrusted();
        let mut answers = HashMap::new();
        for unit in job.units().iter().filter(|u| !u.is_gold()) {
            let (k, j) = unit.pair;
            let votes: Vec<ElementId> = judgments
                .iter()
                .filter(|jd| jd.unit == unit.id && !now_untrusted.contains(&jd.worker))
                .map(|jd| jd.answer)
                .collect();
            // If quality control discarded everything, fall back to all
            // judgments — the requester still needs an answer.
            let votes = if votes.is_empty() {
                judgments
                    .iter()
                    .filter(|jd| jd.unit == unit.id)
                    .map(|jd| jd.answer)
                    .collect()
            } else {
                votes
            };
            let k_votes = votes.iter().filter(|&&a| a == k).count();
            let j_votes = votes.len() - k_votes;
            let winner = if k_votes > j_votes || (k_votes == j_votes && k < j) {
                k
            } else {
                j
            };
            answers.insert(unit.id, winner);
        }

        self.physical_clock += plan.physical_steps;
        self.logical_steps += 1;
        Ok(JobResult {
            answers,
            judgments,
            physical_steps: plan.physical_steps,
            excluded_workers: now_untrusted.into_iter().collect(),
        })
    }
}

/// Adapts a [`Platform`] to `crowd-core`'s [`ComparisonOracle`], so the
/// Section 4 algorithms can run on the full simulator.
///
/// Every `compare` call is one logical step containing a single unit
/// (sequential algorithms cannot batch — each comparison may depend on the
/// previous answer).
#[derive(Debug)]
pub struct PlatformOracle<R: RngCore> {
    platform: Platform<R>,
}

impl<R: RngCore> PlatformOracle<R> {
    /// Wraps a platform.
    pub fn new(platform: Platform<R>) -> Self {
        PlatformOracle { platform }
    }

    /// The wrapped platform (e.g. to inspect the ledger afterwards).
    pub fn platform(&self) -> &Platform<R> {
        &self.platform
    }

    /// Consumes the adapter, returning the platform.
    pub fn into_platform(self) -> Platform<R> {
        self.platform
    }
}

impl<R: RngCore> ComparisonOracle for PlatformOracle<R> {
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        self.platform
            .submit_comparisons(&[(k, j)], class)
            .expect("the platform pool cannot satisfy a single comparison")[0]
    }

    fn counts(&self) -> ComparisonCounts {
        self.platform.counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{Behavior, SpamStrategy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance() -> Instance {
        Instance::new(vec![10.0, 20.0, 30.0, 40.0, 50.0])
    }

    fn honest_pool(n: usize) -> WorkerPool {
        let mut p = WorkerPool::new();
        p.hire_naive_crowd(n, 0.0, 0.0); // perfect naïve workers
        p.hire_expert_panel(3, 0.0, 0.0);
        p
    }

    fn platform(pool: WorkerPool, config: PlatformConfig, seed: u64) -> Platform<StdRng> {
        Platform::new(instance(), pool, config, StdRng::seed_from_u64(seed))
    }

    #[test]
    fn submit_returns_answers_in_order() {
        let mut p = platform(
            honest_pool(5),
            PlatformConfig::paper_default().without_gold(),
            1,
        );
        let answers = p
            .submit_comparisons(
                &[(ElementId(0), ElementId(4)), (ElementId(3), ElementId(1))],
                WorkerClass::Naive,
            )
            .unwrap();
        assert_eq!(answers, vec![ElementId(4), ElementId(3)]);
    }

    #[test]
    fn payments_match_judgments() {
        let cfg = PlatformConfig::paper_default()
            .without_gold()
            .with_judgments_per_unit(3)
            .with_payment(CostModel::new(2.0, 20.0));
        let mut p = platform(honest_pool(5), cfg, 2);
        p.submit_comparisons(&[(ElementId(0), ElementId(1))], WorkerClass::Naive)
            .unwrap();
        assert_eq!(p.ledger().judgments(), 3);
        assert_eq!(p.ledger().total(), 6.0);
        assert_eq!(p.counts().naive, 3);
        p.submit_comparisons(&[(ElementId(0), ElementId(1))], WorkerClass::Expert)
            .unwrap();
        assert_eq!(p.ledger().total(), 6.0 + 3.0 * 20.0); // 3 expert judgments at 20 each
    }

    #[test]
    fn gold_units_are_injected_and_scored() {
        let mut cfg = PlatformConfig::paper_default();
        cfg.gold_fraction = 0.5;
        let mut p = platform(honest_pool(10), cfg, 3);
        p.set_gold_pairs(vec![(ElementId(0), ElementId(4))]);
        // Submit enough batches that gold questions certainly appear.
        for _ in 0..20 {
            p.submit_comparisons(&[(ElementId(1), ElementId(2))], WorkerClass::Naive)
                .unwrap();
        }
        let scored: u32 = (0..12u32)
            .map(|i| p.trust().record_of(WorkerId(i)).seen)
            .sum();
        assert!(scored > 0, "no gold judgments were recorded");
    }

    #[test]
    fn spammers_get_filtered_by_gold() {
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(6, 0.0, 0.0);
        // A spammer who always picks the first element shown.
        let spammer = pool.hire(
            WorkerClass::Naive,
            "spam",
            Behavior::Spammer(SpamStrategy::AlwaysSecond),
        );
        let mut cfg = PlatformConfig::paper_default().with_judgments_per_unit(5);
        cfg.gold_fraction = 0.6;
        cfg.min_gold = 2;
        let mut p = platform(pool, cfg, 4);
        // Gold pairs presented as (higher, lower): AlwaysSecond always fails.
        p.set_gold_pairs(vec![
            (ElementId(4), ElementId(0)),
            (ElementId(3), ElementId(0)),
            (ElementId(4), ElementId(1)),
        ]);
        for _ in 0..30 {
            p.submit_comparisons(&[(ElementId(2), ElementId(3))], WorkerClass::Naive)
                .unwrap();
        }
        assert!(
            !p.trust().is_trusted(spammer),
            "the spammer should have been flagged: {:?}",
            p.trust().record_of(spammer)
        );
    }

    #[test]
    fn logical_and_physical_clocks_advance() {
        let cfg = PlatformConfig::paper_default()
            .without_gold()
            .with_judgments_per_unit(3);
        let mut p = platform(honest_pool(3), cfg, 5);
        // 2 units × 3 judgments over 5 naive workers... pool has 3 naive.
        p.submit_comparisons(
            &[(ElementId(0), ElementId(1)), (ElementId(2), ElementId(3))],
            WorkerClass::Naive,
        )
        .unwrap();
        assert_eq!(p.logical_steps(), 1);
        assert_eq!(p.physical_clock(), 2); // ⌈6/3⌉
    }

    #[test]
    fn oracle_adapter_drives_core_algorithms() {
        use crowd_core::algorithms::{expert_max_find, ExpertMaxConfig};
        let inst = Instance::new((0..60).map(|i| i as f64 * 10.0).collect());
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(10, 0.0, 0.0);
        pool.hire_expert_panel(3, 0.0, 0.0);
        let platform = Platform::new(
            inst.clone(),
            pool,
            PlatformConfig::paper_default().without_gold(),
            StdRng::seed_from_u64(6),
        );
        let mut oracle = PlatformOracle::new(platform);
        let mut rng = StdRng::seed_from_u64(7);
        let out = expert_max_find(&mut oracle, &inst.ids(), &ExpertMaxConfig::new(2), &mut rng);
        assert_eq!(out.winner, inst.max_element());
        let platform = oracle.into_platform();
        assert!(platform.ledger().total() > 0.0);
        assert_eq!(platform.ledger().judgments(), platform.counts().total());
    }

    #[test]
    fn schedule_failure_propagates() {
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(2, 0.0, 0.0); // no experts at all
        let mut p = Platform::new(
            instance(),
            pool,
            PlatformConfig::paper_default().without_gold(),
            StdRng::seed_from_u64(8),
        );
        let err = p
            .submit_comparisons(&[(ElementId(0), ElementId(1))], WorkerClass::Expert)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::NoEligibleWorkers { .. }));
    }

    #[test]
    fn churn_hire_and_retire_mid_campaign() {
        let mut p = platform(
            honest_pool(3),
            PlatformConfig::paper_default().without_gold(),
            11,
        );
        // Retire two of the three naive workers: work continues on one.
        p.retire_worker(WorkerId(0));
        p.retire_worker(WorkerId(1));
        p.submit_comparisons(&[(ElementId(0), ElementId(4))], WorkerClass::Naive)
            .unwrap();
        assert_eq!(p.ledger().earned_by(WorkerId(0)), 0.0);
        assert_eq!(p.ledger().earned_by(WorkerId(1)), 0.0);
        assert!(p.ledger().earned_by(WorkerId(2)) > 0.0);

        // Retire the last one: naive jobs now fail ...
        p.retire_worker(WorkerId(2));
        assert!(p
            .submit_comparisons(&[(ElementId(0), ElementId(4))], WorkerClass::Naive)
            .is_err());

        // ... until a new hire arrives.
        let fresh = p.hire_worker(
            WorkerClass::Naive,
            "late-arrival",
            Behavior::Threshold {
                delta: 0.0,
                epsilon: 0.0,
                tie: crowd_core::model::TiePolicy::UniformRandom,
            },
        );
        let answers = p
            .submit_comparisons(&[(ElementId(0), ElementId(4))], WorkerClass::Naive)
            .unwrap();
        assert_eq!(answers, vec![ElementId(4)]);
        assert!(p.ledger().earned_by(fresh) > 0.0);
        assert_eq!(p.retired_workers().len(), 3);
    }

    #[test]
    #[should_panic(expected = "distinct elements")]
    fn gold_pair_with_duplicate_panics() {
        let mut p = platform(honest_pool(3), PlatformConfig::paper_default(), 9);
        p.set_gold_pairs(vec![(ElementId(0), ElementId(0))]);
    }
}
