//! The worker pool: the set `W` of available workers.
//!
//! The pool owns the live workers, partitions them by class, and hands out
//! assignments round-robin so that no worker judges the same unit twice —
//! the "at least 21 answers per pair" protocol of the paper's Section 3.1
//! needs 21 *distinct* workers per pair.

use crate::worker::{Behavior, Worker, WorkerId, WorkerProfile};
use crowd_core::model::{TiePolicy, WorkerClass};
use std::collections::HashSet;

/// A pool of live workers.
#[derive(Debug, Clone, Default)]
pub struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// An empty pool.
    pub fn new() -> Self {
        WorkerPool::default()
    }

    /// Hires one worker with the given class, channel and behaviour;
    /// returns her id.
    pub fn hire(&mut self, class: WorkerClass, channel: &str, behavior: Behavior) -> WorkerId {
        let id = WorkerId(self.workers.len() as u32);
        self.workers.push(Worker::new(WorkerProfile {
            id,
            class,
            channel: channel.to_string(),
            behavior,
        }));
        id
    }

    /// Hires `count` identical workers; returns their ids.
    pub fn hire_many(
        &mut self,
        count: usize,
        class: WorkerClass,
        channel: &str,
        behavior: Behavior,
    ) -> Vec<WorkerId> {
        (0..count)
            .map(|_| self.hire(class, channel, behavior))
            .collect()
    }

    /// A convenience crowd: `count` naïve threshold workers with uniform
    /// random tie-breaking — the paper's default simulation population.
    pub fn hire_naive_crowd(&mut self, count: usize, delta: f64, epsilon: f64) -> Vec<WorkerId> {
        self.hire_many(
            count,
            WorkerClass::Naive,
            "crowd",
            Behavior::Threshold {
                delta,
                epsilon,
                tie: TiePolicy::UniformRandom,
            },
        )
    }

    /// A heterogeneous crowd: `count` naïve workers whose individual
    /// discernment thresholds are drawn uniformly from
    /// `[delta_lo, delta_hi]` — the paper's closing remark about "a
    /// continuous measure of expertise for ranking workers" as a pool
    /// rather than discrete classes.
    ///
    /// # Panics
    ///
    /// Panics if `delta_lo > delta_hi` or either is negative.
    pub fn hire_heterogeneous_crowd<R: rand::RngCore>(
        &mut self,
        count: usize,
        delta_lo: f64,
        delta_hi: f64,
        epsilon: f64,
        rng: &mut R,
    ) -> Vec<WorkerId> {
        use rand::Rng;
        assert!(
            delta_lo >= 0.0 && delta_lo <= delta_hi,
            "need 0 <= delta_lo <= delta_hi"
        );
        (0..count)
            .map(|_| {
                let delta = if delta_lo == delta_hi {
                    delta_lo
                } else {
                    rng.gen_range(delta_lo..delta_hi)
                };
                self.hire(
                    WorkerClass::Naive,
                    "crowd",
                    Behavior::Threshold {
                        delta,
                        epsilon,
                        tie: TiePolicy::UniformRandom,
                    },
                )
            })
            .collect()
    }

    /// A convenience panel of experts with fine discernment `delta`.
    pub fn hire_expert_panel(&mut self, count: usize, delta: f64, epsilon: f64) -> Vec<WorkerId> {
        self.hire_many(
            count,
            WorkerClass::Expert,
            "external-experts",
            Behavior::Threshold {
                delta,
                epsilon,
                tie: TiePolicy::UniformRandom,
            },
        )
    }

    /// Number of workers in the pool.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True if the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Ids of all workers of `class`.
    pub fn ids_of_class(&self, class: WorkerClass) -> Vec<WorkerId> {
        self.workers
            .iter()
            .filter(|w| w.class() == class)
            .map(Worker::id)
            .collect()
    }

    /// Number of workers of `class`.
    pub fn count_of_class(&self, class: WorkerClass) -> usize {
        self.workers.iter().filter(|w| w.class() == class).count()
    }

    /// Access a worker by id.
    pub fn worker(&self, id: WorkerId) -> &Worker {
        &self.workers[id.index()]
    }

    /// Mutable access, for producing judgments.
    pub fn worker_mut(&mut self, id: WorkerId) -> &mut Worker {
        &mut self.workers[id.index()]
    }

    /// Selects up to `count` distinct workers of `class`, round-robin
    /// starting after `cursor` (which the caller advances between calls so
    /// load spreads across the pool), excluding `excluded` workers (e.g.
    /// spam-flagged ones).
    ///
    /// Returns fewer than `count` ids if the class has fewer eligible
    /// workers — the scheduler then stretches the work over more physical
    /// steps instead.
    pub fn select(
        &self,
        class: WorkerClass,
        count: usize,
        cursor: usize,
        excluded: &HashSet<WorkerId>,
    ) -> Vec<WorkerId> {
        let eligible: Vec<WorkerId> = self
            .workers
            .iter()
            .filter(|w| w.class() == class && !excluded.contains(&w.id()))
            .map(Worker::id)
            .collect();
        if eligible.is_empty() {
            return Vec::new();
        }
        let take = count.min(eligible.len());
        (0..take)
            .map(|i| eligible[(cursor + i) % eligible.len()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> WorkerPool {
        let mut p = WorkerPool::new();
        p.hire_naive_crowd(5, 10.0, 0.1);
        p.hire_expert_panel(2, 1.0, 0.0);
        p
    }

    #[test]
    fn hire_assigns_sequential_ids() {
        let p = pool();
        assert_eq!(p.len(), 7);
        assert_eq!(p.worker(WorkerId(0)).id(), WorkerId(0));
        assert_eq!(p.worker(WorkerId(6)).id(), WorkerId(6));
    }

    #[test]
    fn class_partitions() {
        let p = pool();
        assert_eq!(p.count_of_class(WorkerClass::Naive), 5);
        assert_eq!(p.count_of_class(WorkerClass::Expert), 2);
        assert_eq!(p.ids_of_class(WorkerClass::Expert).len(), 2);
    }

    #[test]
    fn select_returns_distinct_workers() {
        let p = pool();
        let sel = p.select(WorkerClass::Naive, 3, 0, &HashSet::new());
        assert_eq!(sel.len(), 3);
        let unique: HashSet<_> = sel.iter().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn select_caps_at_class_size() {
        let p = pool();
        let sel = p.select(WorkerClass::Expert, 10, 0, &HashSet::new());
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn select_rotates_with_cursor() {
        let p = pool();
        let first = p.select(WorkerClass::Naive, 2, 0, &HashSet::new());
        let second = p.select(WorkerClass::Naive, 2, 2, &HashSet::new());
        assert_ne!(first, second);
    }

    #[test]
    fn select_respects_exclusions() {
        let p = pool();
        let banned: HashSet<WorkerId> = p.ids_of_class(WorkerClass::Naive).into_iter().collect();
        assert!(p.select(WorkerClass::Naive, 3, 0, &banned).is_empty());
    }

    #[test]
    fn heterogeneous_crowd_has_varied_discernment() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut p = WorkerPool::new();
        let mut rng = StdRng::seed_from_u64(1);
        let ids = p.hire_heterogeneous_crowd(20, 1.0, 100.0, 0.05, &mut rng);
        assert_eq!(ids.len(), 20);
        let deltas: Vec<f64> = ids
            .iter()
            .map(|&id| match p.worker(id).profile().behavior {
                Behavior::Threshold { delta, .. } => delta,
                _ => unreachable!("heterogeneous crowds are threshold workers"),
            })
            .collect();
        let (lo, hi) = deltas
            .iter()
            .fold((f64::MAX, f64::MIN), |(a, b), &d| (a.min(d), b.max(d)));
        assert!(hi - lo > 20.0, "discernment should vary: {lo}..{hi}");
        assert!(deltas.iter().all(|&d| (1.0..100.0).contains(&d)));
    }

    #[test]
    fn empty_pool() {
        let p = WorkerPool::new();
        assert!(p.is_empty());
        assert!(p
            .select(WorkerClass::Naive, 1, 0, &HashSet::new())
            .is_empty());
    }
}
