//! # crowd-platform
//!
//! A crowdsourcing-platform simulator standing in for CrowdFlower in the
//! reproduction of *"The Importance of Being Expert"* (SIGMOD 2015).
//!
//! The paper's experiments ran on CrowdFlower, a paid platform providing
//! worker channels, per-judgment billing, and gold-question quality control
//! (workers below 70% gold accuracy are ignored). This crate implements
//! that machinery over the simulated worker behaviours of `crowd-core`:
//!
//! * [`worker`] — individual workers: honest threshold/probabilistic
//!   behaviour or spam strategies.
//! * [`pool`] — the workforce `W`, partitioned into naïve and expert
//!   classes and hired per channel.
//! * [`task`] — jobs, pairwise-comparison units, gold units, judgments.
//! * [`scheduler`] — logical steps expanded into physical steps
//!   (`⌈judgments / workers⌉`), with distinct workers per unit.
//! * [`quality`] — gold-based trust tracking and the 70% exclusion rule.
//! * [`billing`] — the per-judgment payment ledger.
//! * [`platform`] — the facade, plus [`platform::PlatformOracle`] adapting
//!   it to `crowd-core`'s `ComparisonOracle` so the paper's algorithms run
//!   unmodified on the full simulator.
//! * [`batched`] — batched execution: one job per logical step, realizing
//!   the `⌈|B_s|/|W|⌉` physical-step parallelism of the paper's time
//!   model.
//! * [`report`] — the requester-facing campaign dashboard.
//! * [`fault`] — seedable fault injection: worker dropout, mid-batch
//!   abandonment, transient no-answers, and latency distributions.
//! * [`retry`] — timeout recovery: capped exponential backoff,
//!   re-assignment to fresh workers, and dead-letter records.
//! * [`journal`] — write-ahead, length-prefixed + checksummed journaling
//!   of every batch, with batch-aligned checkpoint cadence.
//! * [`mod@recover`] — crash recovery: replay a journal on a fresh platform,
//!   audited against its checkpoints and the `crowd_core::replay`
//!   transcript, then continue live.
//! * [`chaos`] — deterministic, seeded crash injection (mid-batch,
//!   between rounds, at the phase transition, torn journal writes) for
//!   proving resume-equals-uninterrupted.
//! * [`serve`] — crowd-serve: an overload-robust multi-tenant job
//!   service multiplexing concurrent max-finding jobs over sharded
//!   worker pools, with token-bucket admission control, bounded-queue
//!   load shedding, deficit-round-robin dispatch, per-worker circuit
//!   breakers, graceful degradation, and WAL-journaled crash recovery.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod batched;
pub mod billing;
pub mod chaos;
pub mod fault;
pub mod journal;
pub mod platform;
pub mod pool;
pub mod quality;
pub mod recover;
pub mod report;
pub mod retry;
pub mod scheduler;
pub mod serve;
pub mod task;
pub mod worker;

pub use batched::{batched_all_play_all, batched_filter, BatchedFilterOutcome, BatchedTournament};
pub use billing::Ledger;
pub use chaos::{ChaosPlan, InjectionPoint};
pub use fault::{FaultConfig, FaultPlan, JudgeFate, LatencyModel};
pub use journal::{
    CheckpointPolicy, DecodedJournal, Journal, JournalRecord, JournaledOracle, JOURNAL_VERSION,
};
pub use platform::{JobResult, Platform, PlatformConfig, PlatformError, PlatformOracle};
pub use pool::WorkerPool;
pub use quality::{GoldRecord, TrustTracker};
pub use recover::{recover, resume_job, RecoverError, Recovered, ResumeOracle, ScriptEntry};
pub use report::{CampaignReport, WorkerLine};
pub use retry::{DeadLetter, DeadLetterReason, RetryPolicy};
pub use scheduler::{physical_steps, reassign, schedule, Assignment, Schedule, ScheduleError};
pub use serve::{
    Admission, ArrivalPlan, BreakerPolicy, CircuitBreaker, CompletedJob, CrowdServe, JobId,
    JobSpec, ServeConfig, ServeError, ServeKill, ServeReport, ShardSpec, TenantId, TenantPolicy,
    TenantReport,
};
pub use task::{Job, Judgment, Unit, UnitId};
pub use worker::{Behavior, SpamStrategy, Worker, WorkerId, WorkerProfile};
