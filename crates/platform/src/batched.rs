//! Batched algorithm execution: one job per logical step.
//!
//! The paper's computation model (Section 3) runs algorithms in logical
//! steps: "in the s-th logical step, a batch `B_s` of pairwise comparisons
//! is sent to the crowdsourcing platform", and each logical step costs
//! `⌈|B_s| / |W_t|⌉` *physical* steps of wall-clock time. Driving the
//! platform through the sequential [`ComparisonOracle`](crowd_core::oracle::ComparisonOracle) adapter submits
//! one-unit jobs, so a tournament of `m` games takes `m` physical steps;
//! the batched executors below submit every independent comparison of a
//! round as a single job, so the same tournament takes `⌈m/w⌉` physical
//! steps on a pool of `w` workers — the parallel speedup the paper's time
//! model is about (and the measure Venetis et al. optimize).
//!
//! Algorithm 2 is embarrassingly batchable: within a round, every group's
//! entire all-play-all tournament is independent of every other
//! comparison. [`batched_filter`] exploits exactly that.

use crate::platform::{Platform, PlatformError};
use crowd_core::algorithms::FilterConfig;
use crowd_core::element::ElementId;
use crowd_core::model::WorkerClass;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Win counts from one batched all-play-all tournament.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchedTournament {
    players: Vec<ElementId>,
    wins: Vec<u32>,
}

impl BatchedTournament {
    /// The participants.
    pub fn players(&self) -> &[ElementId] {
        &self.players
    }

    /// Wins of the `i`-th participant.
    pub fn wins(&self, i: usize) -> u32 {
        self.wins[i]
    }

    /// Participants with at least `min_wins` wins, in input order.
    pub fn winners_with_at_least(&self, min_wins: u32) -> Vec<ElementId> {
        self.players
            .iter()
            .zip(&self.wins)
            .filter(|&(_, &w)| w >= min_wins)
            .map(|(&p, _)| p)
            .collect()
    }

    /// The participant with the most wins (ties: earliest).
    pub fn champion(&self) -> Option<ElementId> {
        let mut best: Option<(ElementId, u32)> = None;
        for (&p, &w) in self.players.iter().zip(&self.wins) {
            if best.is_none_or(|(_, top)| w > top) {
                best = Some((p, w));
            }
        }
        best.map(|(p, _)| p)
    }
}

/// Plays an all-play-all tournament as a *single* platform job: all
/// `|players|·(|players|−1)/2` comparisons go out in one batch.
///
/// # Errors
///
/// Propagates platform failures: scheduling errors, budget exhaustion, or
/// units left unanswered after the retry budget is spent.
pub fn batched_all_play_all<R: RngCore>(
    platform: &mut Platform<R>,
    class: WorkerClass,
    players: &[ElementId],
) -> Result<BatchedTournament, PlatformError> {
    let mut pairs = Vec::with_capacity(players.len() * players.len().saturating_sub(1) / 2);
    for i in 0..players.len() {
        for j in (i + 1)..players.len() {
            pairs.push((players[i], players[j]));
        }
    }
    let mut wins = vec![0u32; players.len()];
    if !pairs.is_empty() {
        let answers = platform.submit_comparisons(&pairs, class)?;
        let index: HashMap<ElementId, usize> =
            players.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        for (&winner, &(k, j)) in answers.iter().zip(&pairs) {
            debug_assert!(winner == k || winner == j);
            wins[index[&winner]] += 1;
        }
    }
    Ok(BatchedTournament {
        players: players.to_vec(),
        wins,
    })
}

/// The outcome of a batched Phase-1 run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchedFilterOutcome {
    /// The candidate set.
    pub survivors: Vec<ElementId>,
    /// Logical steps (one per filtering round — all groups of a round
    /// share one job).
    pub logical_steps: u64,
    /// Physical steps consumed (wall-clock in the paper's time model).
    pub physical_steps: u64,
    /// True when the platform degraded service while this filter ran
    /// (dead-lettered units, expert-depletion fallback, …) — the survivor
    /// set may then be larger than Lemma 3's `2·un−1` bound.
    pub degraded: bool,
}

/// Algorithm 2 with one platform job per round: all groups' tournaments of
/// a round are batched together, so a round of `m` comparisons costs
/// `⌈m/w⌉` physical steps instead of `m`.
///
/// Semantically identical to
/// [`filter_candidates`](crowd_core::algorithms::filter_candidates)
/// (without the global-loss option); only the batching differs.
///
/// # Errors
///
/// Propagates platform failures: scheduling errors, budget exhaustion, or
/// units left unanswered after the retry budget is spent.
///
/// # Panics
///
/// Panics if `config.un == 0`.
pub fn batched_filter<R: RngCore>(
    platform: &mut Platform<R>,
    class: WorkerClass,
    elements: &[ElementId],
    config: &FilterConfig,
) -> Result<BatchedFilterOutcome, PlatformError> {
    assert!(
        config.un >= 1,
        "un(n) >= 1: the maximum is indistinguishable from itself"
    );
    let un = config.un;
    let g = 4 * un;
    let physical_start = platform.physical_clock();
    let logical_start = platform.logical_steps();
    let was_degraded = platform.degraded();

    let mut survivors: Vec<ElementId> = elements.to_vec();
    while survivors.len() >= 2 * un {
        // Build the round's batch: every pair of every group.
        let chunks: Vec<Vec<ElementId>> = survivors.chunks(g).map(<[_]>::to_vec).collect();
        let mut pairs = Vec::new();
        let mut skip_whole: Vec<bool> = Vec::with_capacity(chunks.len());
        for (ci, chunk) in chunks.iter().enumerate() {
            let keep_whole = ci == chunks.len() - 1 && chunk.len() <= un;
            skip_whole.push(keep_whole);
            if keep_whole {
                continue;
            }
            for i in 0..chunk.len() {
                for j in (i + 1)..chunk.len() {
                    pairs.push((chunk[i], chunk[j]));
                }
            }
        }
        let answers = platform.submit_comparisons(&pairs, class)?;
        let answer_of: HashMap<(ElementId, ElementId), ElementId> =
            pairs.iter().copied().zip(answers).collect();

        // Score each group from the shared answer map.
        let mut next = Vec::new();
        let mut champions = Vec::new();
        for (chunk, &keep_whole) in chunks.iter().zip(&skip_whole) {
            if keep_whole {
                next.extend_from_slice(chunk);
                champions.extend_from_slice(chunk);
                continue;
            }
            let mut wins = vec![0u32; chunk.len()];
            for i in 0..chunk.len() {
                for j in (i + 1)..chunk.len() {
                    let winner = answer_of[&(chunk[i], chunk[j])];
                    if winner == chunk[i] {
                        wins[i] += 1;
                    } else {
                        wins[j] += 1;
                    }
                }
            }
            let threshold = (chunk.len() - un) as u32;
            for (idx, &e) in chunk.iter().enumerate() {
                if wins[idx] >= threshold {
                    next.push(e);
                }
            }
            if let Some(best) = wins
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .map(|(i, _)| chunk[i])
            {
                champions.push(best);
            }
        }
        if next.is_empty() {
            next = champions; // same graceful degradation as the sequential filter
        }
        assert!(next.len() < survivors.len(), "round failed to shrink");
        survivors = next;
    }

    Ok(BatchedFilterOutcome {
        survivors,
        logical_steps: platform.logical_steps() - logical_start,
        physical_steps: platform.physical_clock() - physical_start,
        degraded: platform.degraded() && !was_degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformConfig;
    use crate::pool::WorkerPool;
    use crowd_core::element::Instance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn perfect_platform(n: usize, workers: usize, seed: u64) -> Platform<StdRng> {
        let instance = Instance::new((0..n).map(|i| i as f64).collect());
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(workers, 0.0, 0.0);
        Platform::new(
            instance,
            pool,
            PlatformConfig::paper_default().without_gold(),
            StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn batched_tournament_matches_values() {
        let mut p = perfect_platform(5, 4, 1);
        let ids: Vec<ElementId> = (0..5).map(ElementId).collect();
        let t = batched_all_play_all(&mut p, WorkerClass::Naive, &ids).unwrap();
        assert_eq!(t.wins(4), 4);
        assert_eq!(t.wins(0), 0);
        assert_eq!(t.champion(), Some(ElementId(4)));
        assert_eq!(t.winners_with_at_least(3), vec![ElementId(3), ElementId(4)]);
        // 10 comparisons over 4 workers → 3 physical steps, 1 logical step.
        assert_eq!(p.logical_steps(), 1);
        assert_eq!(p.physical_clock(), 3);
    }

    #[test]
    fn batched_filter_keeps_max_and_parallelizes() {
        let n = 200;
        let workers = 25;
        let mut p = perfect_platform(n, workers, 2);
        let ids: Vec<ElementId> = (0..n as u32).map(ElementId).collect();
        let out = batched_filter(&mut p, WorkerClass::Naive, &ids, &FilterConfig::new(4)).unwrap();
        assert!(out.survivors.contains(&ElementId(n as u32 - 1)));
        assert!(out.survivors.len() <= 7);
        // Parallelism: far fewer physical steps than comparisons.
        let comparisons = p.counts().naive;
        assert!(
            out.physical_steps <= comparisons / (workers as u64 / 2),
            "{} physical steps for {} comparisons on {} workers",
            out.physical_steps,
            comparisons,
            workers
        );
        // One logical step (job) per round.
        assert!(
            out.logical_steps <= 8,
            "{} logical steps",
            out.logical_steps
        );
    }

    #[test]
    fn batched_and_sequential_agree_with_perfect_workers() {
        use crate::platform::PlatformOracle;
        use crowd_core::algorithms::filter_candidates;

        let n = 150;
        let ids: Vec<ElementId> = (0..n as u32).map(ElementId).collect();

        let mut batched_p = perfect_platform(n, 10, 3);
        let batched = batched_filter(
            &mut batched_p,
            WorkerClass::Naive,
            &ids,
            &FilterConfig::new(3),
        )
        .unwrap();

        let sequential_p = perfect_platform(n, 10, 3);
        let mut oracle = PlatformOracle::new(sequential_p);
        let sequential = filter_candidates(&mut oracle, &ids, &FilterConfig::new(3));

        assert_eq!(batched.survivors, sequential.survivors);
        // Same comparisons, radically different wall-clock.
        let seq_platform = oracle.into_platform();
        assert_eq!(batched_p.counts().naive, seq_platform.counts().naive);
        assert!(batched.physical_steps < seq_platform.physical_clock() / 5);
    }

    #[test]
    fn single_group_instances_work() {
        let mut p = perfect_platform(10, 3, 4);
        let ids: Vec<ElementId> = (0..10).map(ElementId).collect();
        let out = batched_filter(&mut p, WorkerClass::Naive, &ids, &FilterConfig::new(3)).unwrap();
        assert!(out.survivors.contains(&ElementId(9)));
    }

    #[test]
    fn empty_tournament_is_fine() {
        let mut p = perfect_platform(3, 2, 5);
        let t = batched_all_play_all(&mut p, WorkerClass::Naive, &[]).unwrap();
        assert_eq!(t.champion(), None);
        assert_eq!(p.logical_steps(), 0);
    }

    /// A platform whose naïve pool mixes honest workers with a whole
    /// channel of spammers, with gold questions armed so quality control
    /// can catch them.
    fn spam_infested_platform(
        n: usize,
        honest: usize,
        spammers: usize,
        seed: u64,
    ) -> Platform<StdRng> {
        use crate::worker::{Behavior, SpamStrategy};
        use crowd_core::model::WorkerClass;

        let instance = Instance::new((0..n).map(|i| i as f64).collect());
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(honest, 0.0, 0.0);
        for _ in 0..spammers {
            pool.hire(
                WorkerClass::Naive,
                "spamhaus",
                Behavior::Spammer(SpamStrategy::AlwaysSecond),
            );
        }
        let mut cfg = PlatformConfig::paper_default();
        cfg.gold_fraction = 0.25;
        cfg.min_gold = 2;
        let mut p = Platform::new(instance, pool, cfg, StdRng::seed_from_u64(seed));
        p.set_gold_pairs(vec![
            (ElementId(n as u32 - 1), ElementId(0)),
            (ElementId(n as u32 - 2), ElementId(1)),
        ]);
        p
    }

    #[test]
    fn batched_filter_survives_an_all_spammer_channel() {
        // Half the pool is one big spam channel. Gold questions flag the
        // spammers; the filter must either still honour Lemma 3's
        // |S| <= 2·un − 1 bound, or come back flagged degraded.
        let un = 3;
        let mut p = spam_infested_platform(120, 12, 12, 6);
        let ids: Vec<ElementId> = (0..120).map(ElementId).collect();
        let out = batched_filter(&mut p, WorkerClass::Naive, &ids, &FilterConfig::new(un)).unwrap();
        // |S| < 2·un is Lemma 3's |S| <= 2·un − 1.
        assert!(
            out.survivors.len() < 2 * un || out.degraded,
            "{} survivors with un = {un}, degraded = {}",
            out.survivors.len(),
            out.degraded
        );
        // Quality control earned its keep: the spam channel is flagged.
        let untrusted = p.trust().untrusted();
        assert!(
            !untrusted.is_empty(),
            "gold questions should have caught at least one spammer"
        );
    }

    #[test]
    fn batched_tournament_survives_an_all_spammer_channel() {
        let mut p = spam_infested_platform(30, 8, 8, 7);
        let ids: Vec<ElementId> = (0..12).map(ElementId).collect();
        let t = batched_all_play_all(&mut p, WorkerClass::Naive, &ids).unwrap();
        // The tournament completes and crowns somebody; with honest
        // workers outvoting flagged spam, wins stay consistent.
        assert!(t.champion().is_some());
        let total_wins: u32 = (0..ids.len()).map(|i| t.wins(i)).sum();
        assert_eq!(total_wins as usize, ids.len() * (ids.len() - 1) / 2);
    }
}
