//! Crash recovery: turn durable journal bytes back into a running job.
//!
//! The model is write-ahead-log state-machine replay. The platform is a
//! deterministic state machine (seeded RNGs, a stateless SplitMix64 fault
//! plan, hash-free iteration orders), so re-executing the journaled batch
//! sequence on a *fresh* platform rebuilds worker trust, the ledger, the
//! RNG streams and the fault-plan position exactly — no worker is asked
//! anything new and no money is notionally re-spent until the journal is
//! exhausted. The journal's `Completed` records are not used to *drive*
//! that replay but to *audit* it: every replayed batch is checked against
//! the journaled winners, the cumulative tally, the spend, and the fault
//! stream position, and additionally consumed through a
//! [`crowd_core::replay::ReplayOracle`] built from the journal transcript
//! — the same answered-transcript machinery the offline re-analysis
//! tooling uses. Any mismatch means the journal and the code disagree
//! (config drift, version skew) and recovery aborts rather than silently
//! diverge.
//!
//! The one deliberately re-bought case: a dangling `Scheduled` record
//! (the WAL wrote the intent, the crash hit before any worker answered).
//! Recovery runs that batch live — at most one batch per crash, the
//! floor any write-ahead scheme can guarantee.

use crate::journal::{CheckpointPolicy, Journal, JournalRecord, JournaledOracle, JOURNAL_VERSION};
use crate::platform::Platform;
use crowd_core::element::ElementId;
use crowd_core::model::WorkerClass;
use crowd_core::oracle::{ComparisonCounts, ComparisonOracle, OracleError};
use crowd_core::replay::{JudgmentLog, RecordedJudgment, ReplayOracle};
use crowd_obs::{names as metric_names, Event};
use rand::RngCore;

/// Why a journal could not be recovered.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoverError {
    /// The journal holds no intact record at all.
    Empty,
    /// The first intact record is not a `Started` header.
    MissingHeader,
    /// The journal was written by a different [`JOURNAL_VERSION`].
    VersionMismatch {
        /// The version found in the header.
        found: u32,
    },
    /// The header does not describe the job being resumed.
    JobMismatch {
        /// The job label in the journal.
        journal: String,
        /// The label the caller expected.
        expected: String,
    },
    /// The record sequence violates the WAL grammar (e.g. a `Completed`
    /// without its `Scheduled`).
    Corrupt(String),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Empty => write!(f, "the journal holds no intact record"),
            RecoverError::MissingHeader => write!(f, "the journal does not start with a header"),
            RecoverError::VersionMismatch { found } => write!(
                f,
                "journal version {found} does not match this build's {JOURNAL_VERSION}"
            ),
            RecoverError::JobMismatch { journal, expected } => {
                write!(f, "the journal describes job {journal:?}, not {expected:?}")
            }
            RecoverError::Corrupt(what) => write!(f, "corrupt journal: {what}"),
        }
    }
}

impl std::error::Error for RecoverError {}

/// What a replayed batch must reproduce, straight from its `Completed`
/// record.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedOutcome {
    /// The journaled winners (a prefix on a partial batch).
    pub winners: Vec<ElementId>,
    /// The journaled cumulative judgment tally.
    pub counts: ComparisonCounts,
    /// The journaled cumulative spend.
    pub spent: f64,
    /// The journaled fault-plan stream position.
    pub fault_seq: u64,
    /// True when the batch ended in a mid-batch fault.
    pub partial: bool,
}

/// One batch the resumed run must re-issue: the scheduled pairs, plus the
/// audited outcome when the journal completed the batch (`None` for a
/// dangling `Scheduled` — that batch runs live).
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptEntry {
    /// 0-based batch index.
    pub batch: u64,
    /// The worker class the batch was posted to.
    pub class: WorkerClass,
    /// The comparison pairs, in submission order.
    pub pairs: Vec<(ElementId, ElementId)>,
    /// The audited outcome, when the journal holds one.
    pub expected: Option<ExpectedOutcome>,
}

/// A decoded, structurally validated journal, ready to drive a resume.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovered {
    /// The job label from the header.
    pub job: String,
    /// The platform seed from the header.
    pub seed: u64,
    /// The batches to replay, in order.
    pub script: Vec<ScriptEntry>,
    /// The answered transcript of every completed batch, in order — the
    /// [`ReplayOracle`] audit channel is built from this.
    pub log: JudgmentLog,
    /// True when a torn tail was detected (and discarded) by checksum.
    pub torn_tail: bool,
    /// Journal bytes covered by intact records.
    pub valid_bytes: usize,
}

impl Recovered {
    /// Batches with a journaled outcome (the dangling `Scheduled`, if
    /// any, is not counted — it runs live).
    pub fn completed_batches(&self) -> u64 {
        self.script.iter().filter(|e| e.expected.is_some()).count() as u64
    }
}

/// Decodes and structurally validates journal `bytes`.
///
/// A torn tail (crash mid-write) is not an error: the tail is discarded
/// and recovery proceeds from the last intact record, with
/// [`Recovered::torn_tail`] set.
///
/// # Errors
///
/// Returns a [`RecoverError`] when the journal is empty, headerless,
/// version-skewed, or grammatically corrupt.
pub fn recover(bytes: &[u8]) -> Result<Recovered, RecoverError> {
    let decoded = Journal::decode(bytes);
    let mut records = decoded.records.into_iter();
    let Some(header) = records.next() else {
        return Err(RecoverError::Empty);
    };
    let JournalRecord::Started { version, job, seed } = header else {
        return Err(RecoverError::MissingHeader);
    };
    if version != JOURNAL_VERSION {
        return Err(RecoverError::VersionMismatch { found: version });
    }
    let mut script: Vec<ScriptEntry> = Vec::new();
    let mut log = JudgmentLog::new();
    for record in records {
        match record {
            JournalRecord::Started { .. } => {
                return Err(RecoverError::Corrupt("second Started header".to_string()));
            }
            JournalRecord::Scheduled {
                batch,
                class,
                pairs,
            } => {
                if script.last().is_some_and(|e| e.expected.is_none()) {
                    return Err(RecoverError::Corrupt(format!(
                        "batch {batch} scheduled while the previous batch is still in flight"
                    )));
                }
                if batch != script.len() as u64 {
                    return Err(RecoverError::Corrupt(format!(
                        "batch {batch} scheduled out of order (expected {})",
                        script.len()
                    )));
                }
                script.push(ScriptEntry {
                    batch,
                    class,
                    pairs,
                    expected: None,
                });
            }
            JournalRecord::Completed {
                batch,
                winners,
                workers: _,
                counts,
                spent,
                fault_seq,
                partial,
            } => {
                let Some(entry) = script.last_mut() else {
                    return Err(RecoverError::Corrupt(format!(
                        "batch {batch} completed without being scheduled"
                    )));
                };
                if entry.batch != batch || entry.expected.is_some() {
                    return Err(RecoverError::Corrupt(format!(
                        "batch {batch} completed out of order"
                    )));
                }
                if winners.len() > entry.pairs.len()
                    || (!partial && winners.len() != entry.pairs.len())
                {
                    return Err(RecoverError::Corrupt(format!(
                        "batch {batch} completed with {} winners for {} pairs",
                        winners.len(),
                        entry.pairs.len()
                    )));
                }
                for (&(k, j), &winner) in entry.pairs.iter().zip(&winners) {
                    log.push(RecordedJudgment {
                        class: entry.class,
                        k,
                        j,
                        winner,
                    });
                }
                entry.expected = Some(ExpectedOutcome {
                    winners,
                    counts,
                    spent,
                    fault_seq,
                    partial,
                });
            }
        }
    }
    Ok(Recovered {
        job,
        seed,
        script,
        log,
        torn_tail: decoded.torn_tail,
        valid_bytes: decoded.valid_bytes,
    })
}

/// An oracle that resumes a journaled job: replays the recovered script
/// on a fresh platform (auditing every batch against the journal and the
/// [`ReplayOracle`] transcript), then passes through live.
///
/// The wrapped [`JournaledOracle`] journals the resumed run from scratch,
/// so a resumed job can itself crash and be resumed again.
#[derive(Debug)]
pub struct ResumeOracle<R: RngCore> {
    inner: JournaledOracle<R>,
    script: Vec<ScriptEntry>,
    replay: ReplayOracle,
    pos: usize,
    replayed_comparisons: u64,
    diverged: Option<String>,
}

impl<R: RngCore> ResumeOracle<R> {
    /// Builds the resume path from a recovered journal and a fresh
    /// journaled platform. Emits [`Event::RecoveryStarted`]; when the
    /// script is empty the recovery is trivially complete and
    /// [`Event::RecoveryCompleted`] follows immediately.
    pub fn new(recovered: Recovered, inner: JournaledOracle<R>) -> Self {
        crowd_obs::emit(Event::RecoveryStarted {
            batches: recovered.completed_batches(),
            torn_tail: recovered.torn_tail,
        });
        let oracle = ResumeOracle {
            inner,
            replay: ReplayOracle::new(&recovered.log),
            script: recovered.script,
            pos: 0,
            replayed_comparisons: 0,
            diverged: None,
        };
        if oracle.script.is_empty() {
            oracle.emit_completed();
        }
        oracle
    }

    /// Comparisons restored from the journal instead of re-purchased.
    pub fn replayed_comparisons(&self) -> u64 {
        self.replayed_comparisons
    }

    /// True while journal replay is still in progress.
    pub fn replaying(&self) -> bool {
        self.pos < self.script.len()
    }

    /// The first audit failure, if replay diverged from the journal.
    pub fn diverged(&self) -> Option<&str> {
        self.diverged.as_deref()
    }

    /// The wrapped journaled platform.
    pub fn inner(&self) -> &JournaledOracle<R> {
        &self.inner
    }

    /// Consumes the resume path, returning the journaled platform.
    pub fn into_inner(self) -> JournaledOracle<R> {
        self.inner
    }

    fn emit_completed(&self) {
        crowd_obs::emit(Event::RecoveryCompleted {
            replayed_batches: self.pos as u64,
            replayed_comparisons: self.replayed_comparisons,
        });
        crowd_obs::counter_add(
            metric_names::REPLAYED_COMPARISONS,
            &[],
            self.replayed_comparisons,
        );
    }

    fn diverge(&mut self, what: String) -> OracleError {
        if self.diverged.is_none() {
            self.diverged = Some(what);
        }
        OracleError::Interrupted
    }
}

impl<R: RngCore> ComparisonOracle for ResumeOracle<R> {
    /// Infallible trait surface. Callers that must not panic on replay
    /// divergence or a fault-exhausted platform use [`Self::try_compare`],
    /// which returns the typed [`OracleError`] instead.
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        self.try_compare(class, k, j)
            .expect("the resumed platform cannot answer")
    }

    fn try_compare(
        &mut self,
        class: WorkerClass,
        k: ElementId,
        j: ElementId,
    ) -> Result<ElementId, OracleError> {
        let mut winners = Vec::with_capacity(1);
        self.try_compare_batch(class, &[(k, j)], &mut winners)?;
        Ok(winners[0])
    }

    fn compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) {
        self.try_compare_batch(class, pairs, winners)
            .expect("the resumed platform cannot answer");
    }

    fn try_compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) -> Result<(), OracleError> {
        if self.diverged.is_some() {
            return Err(OracleError::Interrupted);
        }
        if pairs.is_empty() {
            return Ok(());
        }
        let scripted = self.pos < self.script.len();
        if scripted {
            let entry = &self.script[self.pos];
            if entry.class != class || entry.pairs != pairs {
                let batch = entry.batch;
                return Err(self.diverge(format!(
                    "batch {batch}: the resumed run requested different work \
                     than the journal recorded"
                )));
            }
        }
        let start = winners.len();
        let outcome = self.inner.try_compare_batch(class, pairs, winners);
        if !scripted {
            return outcome;
        }
        let entry = &self.script[self.pos];
        let batch = entry.batch;
        if let Some(expected) = entry.expected.clone() {
            let got = &winners[start..];
            if got != expected.winners.as_slice() {
                return Err(self.diverge(format!(
                    "batch {batch}: replay produced different winners than the journal"
                )));
            }
            // Audit through the transcript-replay channel too: the journal
            // log must answer exactly what the fresh platform answered.
            for (&(k, j), &winner) in pairs.iter().zip(got) {
                match self.replay.try_compare(class, k, j) {
                    Ok(w) if w == winner => {}
                    _ => {
                        return Err(self.diverge(format!(
                            "batch {batch}: the journal transcript disagrees with replay"
                        )));
                    }
                }
            }
            let platform = self.inner.platform();
            if platform.counts() != expected.counts
                || platform.fault_seq() != expected.fault_seq
                || platform.ledger().total() != expected.spent
            {
                return Err(self.diverge(format!(
                    "batch {batch}: replayed platform state drifted from the checkpoint \
                     (tally/spend/fault-stream mismatch)"
                )));
            }
            self.replayed_comparisons += got.len() as u64;
        }
        self.pos += 1;
        if self.pos == self.script.len() {
            self.emit_completed();
        }
        outcome
    }

    fn counts(&self) -> ComparisonCounts {
        self.inner.counts()
    }

    fn observe(&mut self, event: crowd_core::trace::TraceEvent) {
        self.inner.observe(event);
    }
}

/// One-call resume: recover `bytes`, validate them against the job the
/// caller is rebuilding, and wrap a fresh `platform` in the replay path.
///
/// `platform` must be constructed exactly as the crashed run's was (same
/// instance, pool, config, and the `seed` the journal header records) —
/// recovery re-executes the journaled batches on it and audits every step
/// against the checkpoints.
///
/// # Errors
///
/// Fails when the journal cannot be decoded ([`recover`]) or its header
/// names a different job or seed.
pub fn resume_job<R: RngCore>(
    bytes: &[u8],
    platform: Platform<R>,
    job: &str,
    seed: u64,
    policy: CheckpointPolicy,
) -> Result<ResumeOracle<R>, RecoverError> {
    let recovered = recover(bytes)?;
    if recovered.job != job {
        return Err(RecoverError::JobMismatch {
            journal: recovered.job,
            expected: job.to_string(),
        });
    }
    if recovered.seed != seed {
        return Err(RecoverError::Corrupt(format!(
            "the journal was seeded with {}, the rebuilt platform with {seed}",
            recovered.seed
        )));
    }
    let inner = JournaledOracle::new(platform, job, seed, policy);
    Ok(ResumeOracle::new(recovered, inner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosPlan, InjectionPoint};
    use crate::platform::PlatformConfig;
    use crate::pool::WorkerPool;
    use crowd_core::element::Instance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const JOB: &str = "recover-test";
    const SEED: u64 = 0xFEED;

    fn fresh_platform() -> Platform<StdRng> {
        let instance = Instance::new(vec![1.0, 5.0, 3.0, 9.0, 7.0, 2.0]);
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(6, 0.1, 0.05);
        Platform::new(
            instance,
            pool,
            PlatformConfig::paper_default().without_gold(),
            StdRng::seed_from_u64(SEED),
        )
    }

    fn batches() -> Vec<Vec<(ElementId, ElementId)>> {
        vec![
            vec![(ElementId(0), ElementId(1)), (ElementId(2), ElementId(3))],
            vec![(ElementId(4), ElementId(5))],
            vec![(ElementId(1), ElementId(3)), (ElementId(3), ElementId(4))],
        ]
    }

    /// Drives the batch list, returning winners and the journal bytes.
    fn run_journaled(chaos: Option<ChaosPlan>) -> (Vec<ElementId>, Vec<u8>) {
        let mut oracle =
            JournaledOracle::new(fresh_platform(), JOB, SEED, CheckpointPolicy::every_batch());
        if let Some(plan) = chaos {
            oracle = oracle.with_chaos(plan);
        }
        let mut winners = Vec::new();
        for batch in batches() {
            if oracle
                .try_compare_batch(WorkerClass::Naive, &batch, &mut winners)
                .is_err()
            {
                break;
            }
        }
        oracle.finish();
        let (journal, _) = oracle.into_parts();
        (winners, journal.durable().to_vec())
    }

    #[test]
    fn resume_after_mid_batch_crash_matches_uninterrupted() {
        let (full, _) = run_journaled(None);
        let (prefix, bytes) =
            run_journaled(Some(ChaosPlan::at(InjectionPoint::MidBatch { batch: 1 })));
        assert_eq!(prefix.len(), 2, "batch 0 answered before the crash");

        let mut resumed = resume_job(
            &bytes,
            fresh_platform(),
            JOB,
            SEED,
            CheckpointPolicy::every_batch(),
        )
        .expect("journal recovers");
        assert!(resumed.replaying());
        let mut winners = Vec::new();
        for batch in batches() {
            resumed
                .try_compare_batch(WorkerClass::Naive, &batch, &mut winners)
                .expect("resumed run answers");
        }
        assert_eq!(winners, full, "resume must equal the uninterrupted run");
        assert_eq!(resumed.diverged(), None);
        assert_eq!(
            resumed.replayed_comparisons(),
            2,
            "batch 0's two comparisons came from the journal replay"
        );
    }

    #[test]
    fn resume_after_torn_write_discards_the_tail_and_matches() {
        let (full, _) = run_journaled(None);
        let (_, bytes) = run_journaled(Some(ChaosPlan::at(InjectionPoint::MidJournalWrite {
            batch: 2,
        })));
        let recovered = recover(&bytes).expect("journal recovers");
        assert!(recovered.torn_tail, "the torn frame must be detected");
        assert_eq!(recovered.completed_batches(), 2);

        let mut resumed = resume_job(
            &bytes,
            fresh_platform(),
            JOB,
            SEED,
            CheckpointPolicy::every_batch(),
        )
        .unwrap();
        let mut winners = Vec::new();
        for batch in batches() {
            resumed
                .try_compare_batch(WorkerClass::Naive, &batch, &mut winners)
                .unwrap();
        }
        assert_eq!(winners, full);
        assert_eq!(resumed.diverged(), None);
    }

    #[test]
    fn resume_audits_against_a_drifted_journal() {
        let (_, bytes) = run_journaled(Some(ChaosPlan::at(InjectionPoint::MidBatch { batch: 2 })));
        // Rebuild the platform with a *different* worker pool: replay
        // diverges from the checkpoints and must abort, not silently
        // continue.
        let instance = Instance::new(vec![1.0, 5.0, 3.0, 9.0, 7.0, 2.0]);
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(6, 0.45, 0.4);
        let drifted = Platform::new(
            instance,
            pool,
            PlatformConfig::paper_default().without_gold(),
            StdRng::seed_from_u64(SEED),
        );
        let mut resumed =
            resume_job(&bytes, drifted, JOB, SEED, CheckpointPolicy::every_batch()).unwrap();
        let mut winners = Vec::new();
        let mut failed = false;
        for batch in batches() {
            if resumed
                .try_compare_batch(WorkerClass::Naive, &batch, &mut winners)
                .is_err()
            {
                failed = true;
                break;
            }
        }
        assert!(
            failed && resumed.diverged().is_some(),
            "a drifted platform must be caught by the audit"
        );
    }

    #[test]
    fn header_mismatches_are_refused() {
        let (_, bytes) = run_journaled(None);
        assert!(matches!(
            resume_job(
                &bytes,
                fresh_platform(),
                "other-job",
                SEED,
                CheckpointPolicy::every_batch()
            ),
            Err(RecoverError::JobMismatch { .. })
        ));
        assert_eq!(recover(b"").unwrap_err(), RecoverError::Empty);
    }

    #[test]
    fn version_skew_is_refused() {
        let mut journal = Journal::new();
        journal.append(&JournalRecord::Started {
            version: JOURNAL_VERSION + 1,
            job: JOB.to_string(),
            seed: SEED,
        });
        journal.flush();
        assert_eq!(
            recover(journal.durable()).unwrap_err(),
            RecoverError::VersionMismatch {
                found: JOURNAL_VERSION + 1
            }
        );
    }
}
