//! Timeout recovery: capped exponential backoff and dead-letter records.
//!
//! When a judgment times out, abandons, or no-answers, the platform
//! re-assigns the unit to a *different* worker (preserving the
//! distinct-workers-per-unit invariant, see
//! [`crate::scheduler::reassign`]) after a backoff delay measured in
//! physical steps. Units that exhaust their retries land in a
//! [`DeadLetter`] record on the platform instead of being silently lost.

use crate::task::UnitId;
use crowd_core::element::ElementId;
use crowd_core::model::WorkerClass;
use serde::{Deserialize, Serialize};

pub use crowd_core::trace::DeadLetterReason;

/// Retry policy for failed judgments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum re-assignments per unit after the initial attempt.
    pub max_retries: u32,
    /// Backoff before the first retry, in physical steps.
    pub base_backoff_steps: u64,
    /// Cap on the (exponentially growing) backoff.
    pub max_backoff_steps: u64,
}

impl RetryPolicy {
    /// The default recovery posture: three retries with 1-step backoff
    /// doubling up to 8 steps. At zero fault rates nothing ever fails, so
    /// this policy is inert and costs nothing.
    pub fn paper_default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_steps: 1,
            max_backoff_steps: 8,
        }
    }

    /// No retries at all: every failed judgment dead-letters immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff_steps: 0,
            max_backoff_steps: 0,
        }
    }

    /// Sets the maximum number of retries.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// The backoff before retry number `attempt` (1-based), in physical
    /// steps: `base · 2^(attempt−1)`, capped at `max_backoff_steps`.
    pub fn backoff(&self, attempt: u32) -> u64 {
        if attempt == 0 || self.base_backoff_steps == 0 {
            return 0;
        }
        let doubled = self
            .base_backoff_steps
            .saturating_mul(1u64.checked_shl(attempt - 1).unwrap_or(u64::MAX));
        doubled.min(self.max_backoff_steps)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::paper_default()
    }
}

/// A unit that exhausted its retries without collecting the judgments it
/// needed — the platform's record of work it had to give up on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadLetter {
    /// The failed unit.
    pub unit: UnitId,
    /// The pair the unit asked about.
    pub pair: (ElementId, ElementId),
    /// The worker class the unit was posted to.
    pub class: WorkerClass,
    /// Total attempts made (initial assignment plus retries).
    pub attempts: u32,
    /// The logical step the unit was posted in.
    pub logical_step: u64,
    /// Why the unit was given up on. `NoHealthyWorkers` (every eligible
    /// worker excluded or quarantined) is deliberately distinct from
    /// `NoFreshWorkers` (a pool too small for the distinct-workers
    /// invariant): dashboards must be able to tell a quarantine storm
    /// from an under-hired campaign.
    pub reason: DeadLetterReason,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff_steps: 1,
            max_backoff_steps: 8,
        };
        assert_eq!(p.backoff(0), 0);
        assert_eq!(p.backoff(1), 1);
        assert_eq!(p.backoff(2), 2);
        assert_eq!(p.backoff(3), 4);
        assert_eq!(p.backoff(4), 8);
        assert_eq!(p.backoff(5), 8, "capped");
        assert_eq!(p.backoff(63), 8, "shift overflow saturates at the cap");
        assert_eq!(p.backoff(100), 8, "shift overflow saturates at the cap");
    }

    #[test]
    fn zero_base_means_no_backoff() {
        assert_eq!(RetryPolicy::none().backoff(5), 0);
    }

    #[test]
    fn cap_is_reached_exactly_when_a_doubling_lands_on_it() {
        // 2·2³ = 16 == cap: the boundary attempt hits the cap without
        // overshooting, and every later attempt stays pinned there.
        let p = RetryPolicy {
            max_retries: 8,
            base_backoff_steps: 2,
            max_backoff_steps: 16,
        };
        assert_eq!(p.backoff(3), 8);
        assert_eq!(p.backoff(4), 16);
        assert_eq!(p.backoff(5), 16);
    }

    #[test]
    fn base_above_the_cap_clamps_from_the_first_retry() {
        let p = RetryPolicy {
            max_retries: 2,
            base_backoff_steps: 8,
            max_backoff_steps: 4,
        };
        assert_eq!(p.backoff(1), 4);
        assert_eq!(p.backoff(2), 4);
    }

    #[test]
    fn cap_equal_to_base_pins_every_retry() {
        let p = RetryPolicy {
            max_retries: 4,
            base_backoff_steps: 3,
            max_backoff_steps: 3,
        };
        for attempt in 1..=4 {
            assert_eq!(p.backoff(attempt), 3);
        }
    }

    #[test]
    fn shift_overflow_boundary_saturates_instead_of_wrapping() {
        // With an unbounded cap, attempt 64 uses the last in-range shift
        // (2⁶³) and attempt 65 crosses the u64 shift limit — the backoff
        // must saturate, not wrap to a tiny delay.
        let p = RetryPolicy {
            max_retries: u32::MAX,
            base_backoff_steps: 1,
            max_backoff_steps: u64::MAX,
        };
        assert_eq!(p.backoff(64), 1u64 << 63);
        assert_eq!(p.backoff(65), u64::MAX);
    }

    #[test]
    fn dead_letter_serializes() {
        let dl = DeadLetter {
            unit: UnitId(3),
            pair: (ElementId(1), ElementId(2)),
            class: WorkerClass::Naive,
            attempts: 4,
            logical_step: 7,
            reason: DeadLetterReason::NoHealthyWorkers,
        };
        let json = serde_json::to_string(&dl).unwrap();
        assert!(json.contains("attempts"), "{json}");
        assert!(json.contains("NoHealthyWorkers"), "{json}");
    }
}
