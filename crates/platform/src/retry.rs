//! Timeout recovery: capped exponential backoff and dead-letter records.
//!
//! When a judgment times out, abandons, or no-answers, the platform
//! re-assigns the unit to a *different* worker (preserving the
//! distinct-workers-per-unit invariant, see
//! [`crate::scheduler::reassign`]) after a backoff delay measured in
//! physical steps. Units that exhaust their retries land in a
//! [`DeadLetter`] record on the platform instead of being silently lost.

use crate::task::UnitId;
use crowd_core::element::ElementId;
use crowd_core::model::WorkerClass;
use serde::{Deserialize, Serialize};

/// Retry policy for failed judgments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum re-assignments per unit after the initial attempt.
    pub max_retries: u32,
    /// Backoff before the first retry, in physical steps.
    pub base_backoff_steps: u64,
    /// Cap on the (exponentially growing) backoff.
    pub max_backoff_steps: u64,
}

impl RetryPolicy {
    /// The default recovery posture: three retries with 1-step backoff
    /// doubling up to 8 steps. At zero fault rates nothing ever fails, so
    /// this policy is inert and costs nothing.
    pub fn paper_default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_steps: 1,
            max_backoff_steps: 8,
        }
    }

    /// No retries at all: every failed judgment dead-letters immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff_steps: 0,
            max_backoff_steps: 0,
        }
    }

    /// Sets the maximum number of retries.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// The backoff before retry number `attempt` (1-based), in physical
    /// steps: `base · 2^(attempt−1)`, capped at `max_backoff_steps`.
    pub fn backoff(&self, attempt: u32) -> u64 {
        if attempt == 0 || self.base_backoff_steps == 0 {
            return 0;
        }
        let doubled = self
            .base_backoff_steps
            .saturating_mul(1u64.checked_shl(attempt - 1).unwrap_or(u64::MAX));
        doubled.min(self.max_backoff_steps)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::paper_default()
    }
}

/// A unit that exhausted its retries without collecting the judgments it
/// needed — the platform's record of work it had to give up on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadLetter {
    /// The failed unit.
    pub unit: UnitId,
    /// The pair the unit asked about.
    pub pair: (ElementId, ElementId),
    /// The worker class the unit was posted to.
    pub class: WorkerClass,
    /// Total attempts made (initial assignment plus retries).
    pub attempts: u32,
    /// The logical step the unit was posted in.
    pub logical_step: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff_steps: 1,
            max_backoff_steps: 8,
        };
        assert_eq!(p.backoff(0), 0);
        assert_eq!(p.backoff(1), 1);
        assert_eq!(p.backoff(2), 2);
        assert_eq!(p.backoff(3), 4);
        assert_eq!(p.backoff(4), 8);
        assert_eq!(p.backoff(5), 8, "capped");
        assert_eq!(p.backoff(63), 8, "shift overflow saturates at the cap");
        assert_eq!(p.backoff(100), 8, "shift overflow saturates at the cap");
    }

    #[test]
    fn zero_base_means_no_backoff() {
        assert_eq!(RetryPolicy::none().backoff(5), 0);
    }

    #[test]
    fn dead_letter_serializes() {
        let dl = DeadLetter {
            unit: UnitId(3),
            pair: (ElementId(1), ElementId(2)),
            class: WorkerClass::Naive,
            attempts: 4,
            logical_step: 7,
        };
        let json = serde_json::to_string(&dl).unwrap();
        assert!(json.contains("attempts"), "{json}");
    }
}
