//! Jobs, units and judgments — the platform's task vocabulary.
//!
//! Following CrowdFlower's terminology (Section 3.1 of the paper): a *job*
//! is a batch of *units* (here, pairwise comparisons); each unit collects a
//! number of *judgments* from distinct workers. Some units are *gold*:
//! their true answer is known, they are indistinguishable from real units
//! to the workers, and they exist solely to score worker trust ("15% of the
//! queries that we performed are gold queries").

use crate::worker::WorkerId;
use crowd_core::element::ElementId;
use serde::{Deserialize, Serialize};

/// Identifier of a unit within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UnitId(pub u32);

/// A single pairwise-comparison unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Unit {
    /// The unit's id within its job.
    pub id: UnitId,
    /// The pair of elements to compare.
    pub pair: (ElementId, ElementId),
    /// For gold units, the known correct answer.
    pub gold_answer: Option<ElementId>,
}

impl Unit {
    /// A regular (paid, scored-by-aggregation) unit.
    pub fn regular(id: UnitId, k: ElementId, j: ElementId) -> Self {
        assert_ne!(k, j, "a unit compares two distinct elements");
        Unit {
            id,
            pair: (k, j),
            gold_answer: None,
        }
    }

    /// A gold unit with known answer.
    ///
    /// # Panics
    ///
    /// Panics if `answer` is not one of the pair.
    pub fn gold(id: UnitId, k: ElementId, j: ElementId, answer: ElementId) -> Self {
        assert_ne!(k, j, "a unit compares two distinct elements");
        assert!(
            answer == k || answer == j,
            "the gold answer must be one of the pair"
        );
        Unit {
            id,
            pair: (k, j),
            gold_answer: Some(answer),
        }
    }

    /// True for gold units.
    pub fn is_gold(&self) -> bool {
        self.gold_answer.is_some()
    }
}

/// One worker's answer to one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Judgment {
    /// The unit judged.
    pub unit: UnitId,
    /// The worker who judged it.
    pub worker: WorkerId,
    /// The element the worker declared the winner.
    pub answer: ElementId,
    /// The physical time step at which the judgment was produced.
    pub physical_step: u64,
}

/// A job: a batch of units plus the per-unit judgment requirement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    units: Vec<Unit>,
    judgments_per_unit: u32,
}

impl Job {
    /// Builds a job.
    ///
    /// # Panics
    ///
    /// Panics if `judgments_per_unit == 0` or `units` is empty.
    pub fn new(units: Vec<Unit>, judgments_per_unit: u32) -> Self {
        assert!(!units.is_empty(), "a job needs at least one unit");
        assert!(
            judgments_per_unit > 0,
            "each unit needs at least one judgment"
        );
        Job {
            units,
            judgments_per_unit,
        }
    }

    /// Convenience: a job of regular units from raw pairs.
    pub fn from_pairs(pairs: &[(ElementId, ElementId)], judgments_per_unit: u32) -> Self {
        let units = pairs
            .iter()
            .enumerate()
            .map(|(i, &(k, j))| Unit::regular(UnitId(i as u32), k, j))
            .collect();
        Job::new(units, judgments_per_unit)
    }

    /// The job's units.
    pub fn units(&self) -> &[Unit] {
        &self.units
    }

    /// Judgments each unit must collect.
    pub fn judgments_per_unit(&self) -> u32 {
        self.judgments_per_unit
    }

    /// Total judgments the job will request.
    pub fn total_judgments(&self) -> u64 {
        self.units.len() as u64 * self.judgments_per_unit as u64
    }

    /// Number of gold units in the job.
    pub fn gold_count(&self) -> usize {
        self.units.iter().filter(|u| u.is_gold()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ElementId = ElementId(0);
    const B: ElementId = ElementId(1);

    #[test]
    fn regular_and_gold_units() {
        let r = Unit::regular(UnitId(0), A, B);
        assert!(!r.is_gold());
        let g = Unit::gold(UnitId(1), A, B, B);
        assert!(g.is_gold());
        assert_eq!(g.gold_answer, Some(B));
    }

    #[test]
    #[should_panic(expected = "distinct elements")]
    fn self_pair_panics() {
        Unit::regular(UnitId(0), A, A);
    }

    #[test]
    #[should_panic(expected = "one of the pair")]
    fn foreign_gold_answer_panics() {
        Unit::gold(UnitId(0), A, B, ElementId(9));
    }

    #[test]
    fn job_accounting() {
        let job = Job::new(
            vec![
                Unit::regular(UnitId(0), A, B),
                Unit::gold(UnitId(1), A, B, B),
            ],
            21,
        );
        assert_eq!(job.total_judgments(), 42);
        assert_eq!(job.gold_count(), 1);
        assert_eq!(job.judgments_per_unit(), 21);
        assert_eq!(job.units().len(), 2);
    }

    #[test]
    fn job_from_pairs() {
        let job = Job::from_pairs(&[(A, B), (B, ElementId(2))], 3);
        assert_eq!(job.units().len(), 2);
        assert_eq!(job.gold_count(), 0);
        assert_eq!(job.units()[1].pair, (B, ElementId(2)));
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn empty_job_panics() {
        Job::new(vec![], 1);
    }

    #[test]
    #[should_panic(expected = "at least one judgment")]
    fn zero_judgments_panics() {
        Job::new(vec![Unit::regular(UnitId(0), A, B)], 0);
    }
}
