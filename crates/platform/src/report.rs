//! Platform activity reports: the requester-facing view of a campaign.
//!
//! Crowdsourcing platforms give requesters dashboards — spend so far,
//! per-worker contribution and trust, class breakdowns. [`CampaignReport`]
//! assembles that view from a [`Platform`]'s ledger, trust tracker and
//! counters, and renders it as text for logs and examples.

use crate::platform::Platform;
use crate::worker::WorkerId;
use crowd_core::model::WorkerClass;
use crowd_core::trace::FaultCounts;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-worker line of a campaign report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerLine {
    /// The worker.
    pub id: WorkerId,
    /// Her class.
    pub class: WorkerClass,
    /// Labour channel.
    pub channel: String,
    /// Money earned.
    pub earned: f64,
    /// Gold questions seen / answered correctly.
    pub gold: (u32, u32),
    /// Whether her responses are currently used.
    pub trusted: bool,
}

/// A snapshot of a platform campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Total money spent.
    pub total_spent: f64,
    /// Spend per class (naïve, expert).
    pub spent_by_class: (f64, f64),
    /// Judgments paid for.
    pub judgments: u64,
    /// Logical steps (jobs) executed.
    pub logical_steps: u64,
    /// Physical steps elapsed.
    pub physical_steps: u64,
    /// Fault tallies (dropouts, timeouts, retries, …) per worker class.
    pub faults: FaultCounts,
    /// Units the platform gave up on after exhausting their retries.
    pub dead_letters: u64,
    /// True when any job degraded service (dead-lettered units or
    /// expert-depletion fallback); results may be weaker than the paper's
    /// guarantees promise.
    pub degraded: bool,
    /// Per-worker lines, highest earner first.
    pub workers: Vec<WorkerLine>,
}

impl CampaignReport {
    /// Builds the report from a platform.
    pub fn from_platform<R: RngCore>(platform: &Platform<R>) -> Self {
        let mut workers: Vec<WorkerLine> = (0..platform.pool().len() as u32)
            .map(WorkerId)
            .map(|id| {
                let profile = platform.pool().worker(id).profile();
                let rec = platform.trust().record_of(id);
                WorkerLine {
                    id,
                    class: profile.class,
                    channel: profile.channel.clone(),
                    earned: platform.ledger().earned_by(id),
                    gold: (rec.seen, rec.correct),
                    trusted: platform.trust().is_trusted(id),
                }
            })
            .collect();
        workers.sort_by(|a, b| b.earned.total_cmp(&a.earned).then(a.id.cmp(&b.id)));
        CampaignReport {
            total_spent: platform.ledger().total(),
            spent_by_class: (
                platform.ledger().spent_on(WorkerClass::Naive),
                platform.ledger().spent_on(WorkerClass::Expert),
            ),
            judgments: platform.ledger().judgments(),
            logical_steps: platform.logical_steps(),
            physical_steps: platform.physical_clock(),
            faults: platform.fault_counts(),
            dead_letters: platform.dead_letters().len() as u64,
            degraded: platform.degraded(),
            workers,
        }
    }

    /// Workers flagged by quality control.
    pub fn excluded(&self) -> Vec<WorkerId> {
        self.workers
            .iter()
            .filter(|w| !w.trusted)
            .map(|w| w.id)
            .collect()
    }

    /// The busiest (highest-earning) worker, if any work happened.
    pub fn top_earner(&self) -> Option<&WorkerLine> {
        self.workers.first().filter(|w| w.earned > 0.0)
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign: ${:.2} spent (${:.2} naive / ${:.2} expert) over {} judgments, {} jobs, {} physical steps",
            self.total_spent,
            self.spent_by_class.0,
            self.spent_by_class.1,
            self.judgments,
            self.logical_steps,
            self.physical_steps,
        )?;
        let faults = self.faults.naive + self.faults.expert;
        if faults.total() > 0 || self.dead_letters > 0 || self.degraded {
            writeln!(
                f,
                "  faults: {} dropouts, {} abandons, {} no-answers, {} timeouts, {} retries, {} dead-lettered units{}",
                faults.dropouts,
                faults.abandons,
                faults.no_answers,
                faults.timeouts,
                faults.retries,
                self.dead_letters,
                if self.degraded { "  (DEGRADED)" } else { "" },
            )?;
        }
        for w in &self.workers {
            writeln!(
                f,
                "  {} [{} @{}] earned ${:.2}, gold {}/{}{}",
                w.id,
                w.class,
                w.channel,
                w.earned,
                w.gold.1,
                w.gold.0,
                if w.trusted { "" } else { "  (EXCLUDED)" },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformConfig;
    use crate::pool::WorkerPool;
    use crate::worker::{Behavior, SpamStrategy};
    use crowd_core::element::{ElementId, Instance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn campaign() -> CampaignReport {
        let instance = Instance::new((0..30).map(|i| i as f64 * 10.0).collect());
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(4, 0.0, 0.0);
        pool.hire(
            WorkerClass::Naive,
            "spam",
            Behavior::Spammer(SpamStrategy::AlwaysSecond),
        );
        pool.hire_expert_panel(2, 0.0, 0.0);
        let mut cfg = PlatformConfig::paper_default();
        cfg.gold_fraction = 0.5;
        cfg.min_gold = 2;
        let mut platform = Platform::new(instance, pool, cfg, StdRng::seed_from_u64(1));
        platform.set_gold_pairs(vec![
            (ElementId(29), ElementId(0)),
            (ElementId(28), ElementId(1)),
        ]);
        for i in 0..40u32 {
            platform
                .submit_comparisons(
                    &[(ElementId(i % 20), ElementId(i % 20 + 5))],
                    WorkerClass::Naive,
                )
                .unwrap();
        }
        platform
            .submit_comparisons(&[(ElementId(0), ElementId(29))], WorkerClass::Expert)
            .unwrap();
        CampaignReport::from_platform(&platform)
    }

    #[test]
    fn totals_are_consistent() {
        let r = campaign();
        assert!(r.total_spent > 0.0);
        let worker_sum: f64 = r.workers.iter().map(|w| w.earned).sum();
        assert!(
            (worker_sum - r.total_spent).abs() < 1e-6,
            "per-worker pay must sum to the total"
        );
        assert!((r.spent_by_class.0 + r.spent_by_class.1 - r.total_spent).abs() < 1e-6);
        assert!(r.judgments > 40);
        assert!(r.logical_steps >= 41);
    }

    #[test]
    fn workers_sorted_by_earnings() {
        let r = campaign();
        for w in r.workers.windows(2) {
            assert!(w[0].earned >= w[1].earned);
        }
        assert!(r.top_earner().is_some());
    }

    #[test]
    fn spammer_appears_excluded() {
        let r = campaign();
        let spam = r
            .workers
            .iter()
            .find(|w| w.channel == "spam")
            .expect("hired");
        assert!(!spam.trusted, "the spammer should be flagged: {spam:?}");
        assert!(r.excluded().contains(&spam.id));
    }

    #[test]
    fn display_renders_every_worker() {
        let r = campaign();
        let text = r.to_string();
        assert!(text.contains("campaign: $"));
        assert!(text.contains("(EXCLUDED)"));
        // A fault-free campaign prints no fault line.
        assert!(!text.contains("faults:"), "{text}");
        assert_eq!(text.lines().count(), 1 + r.workers.len());
    }

    #[test]
    fn fault_free_campaign_reports_clean_bill() {
        let r = campaign();
        assert_eq!(r.faults.total(), 0);
        assert_eq!(r.dead_letters, 0);
        assert!(!r.degraded);
    }

    #[test]
    fn faulty_campaign_surfaces_tallies_and_degradation() {
        use crate::fault::FaultConfig;
        use crate::retry::RetryPolicy;

        let instance = Instance::new((0..10).map(|i| i as f64).collect());
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(3, 0.0, 0.0);
        let cfg = PlatformConfig::paper_default()
            .without_gold()
            .with_faults(FaultConfig::none().with_no_answer(1.0), 9)
            .with_retry(RetryPolicy::paper_default());
        let mut platform = Platform::new(instance, pool, cfg, StdRng::seed_from_u64(2));
        let err = platform
            .submit_comparisons(&[(ElementId(0), ElementId(9))], WorkerClass::Naive)
            .unwrap_err();
        assert!(err.to_string().contains("unanswered"), "{err}");
        let r = CampaignReport::from_platform(&platform);
        assert!(r.faults.naive.no_answers > 0);
        assert!(r.faults.naive.retries > 0);
        assert_eq!(r.dead_letters, 1);
        assert!(r.degraded);
        let text = r.to_string();
        assert!(text.contains("faults:"), "{text}");
        assert!(text.contains("(DEGRADED)"), "{text}");
    }
}
