//! Write-ahead journaling of platform batches for crash recovery.
//!
//! Crowdsourced judgments cost real money: a campaign killed halfway has
//! paid for every answered comparison, and restarting from scratch buys
//! them all again. The paper's two-phase algorithm is driven entirely by
//! its ordered comparison stream, so a journal of *(batch pairs, worker
//! assignments, outcomes, RNG stream positions, budget spent)* is a
//! complete recovery state — see `crowd_core::replay` for the
//! transcript-replay argument.
//!
//! This module provides the journal itself:
//!
//! * [`JournalRecord`] — the versioned record vocabulary: one
//!   [`Started`](JournalRecord::Started) header, then a
//!   [`Scheduled`](JournalRecord::Scheduled) /
//!   [`Completed`](JournalRecord::Completed) pair per batch.
//! * [`Journal`] — an append-only byte log with an explicit durability
//!   line: records accumulate in a pending buffer and survive a crash
//!   only once [`flush`](Journal::flush)ed. Every record is framed as
//!   `<len> <fnv1a64-hex> <json>\n` (length-prefixed + checksummed
//!   JSONL), so a torn tail — a crash mid-write — is *detected*, not
//!   silently parsed.
//! * [`JournaledOracle`] — a [`PlatformOracle`] decorator that
//!   write-ahead journals every batch: the `Scheduled` record is flushed
//!   *before* workers are asked (the WAL invariant — at most one batch is
//!   ever in flight), the `Completed` record is flushed at the
//!   batch-aligned cadence of a [`CheckpointPolicy`].
//!
//! Recovery from these bytes lives in [`mod@crate::recover`]; deterministic
//! crash injection in [`crate::chaos`].

use crate::chaos::ChaosPlan;
use crate::platform::{Platform, PlatformOracle};
use crate::worker::WorkerId;
use crowd_core::element::ElementId;
use crowd_core::model::WorkerClass;
use crowd_core::oracle::{ComparisonCounts, ComparisonOracle, OracleError};
use crowd_obs::{names as metric_names, Event};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Version stamped into every [`JournalRecord::Started`] header. Bump on
/// any change to the record vocabulary or frame format; recovery refuses
/// journals written by a different version rather than misread them.
pub const JOURNAL_VERSION: u32 = 2;

/// FNV-1a 64-bit — the frame checksum. Not cryptographic; it only has to
/// catch torn tails and bit rot, and it does that in four lines with no
/// dependencies.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One journal record. Serialized as one framed JSON line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// The journal header — always the first record.
    Started {
        /// The writing code's [`JOURNAL_VERSION`].
        version: u32,
        /// A caller-chosen job label (recovery verifies it resumes the
        /// job it thinks it does).
        job: String,
        /// The platform RNG seed the job was started with.
        seed: u64,
    },
    /// A batch is about to be submitted to workers. Flushed *before*
    /// execution — the write-ahead half of the WAL pair.
    Scheduled {
        /// 0-based batch index.
        batch: u64,
        /// The worker class asked.
        class: WorkerClass,
        /// The comparison pairs, in submission order.
        pairs: Vec<(ElementId, ElementId)>,
    },
    /// The batch finished (fully, or up to a mid-batch fault).
    Completed {
        /// The matching [`Scheduled`](JournalRecord::Scheduled) index.
        batch: u64,
        /// Majority winner per pair, in submission order. On a partial
        /// batch this is the completed *prefix* — those answers were
        /// purchased and must never be re-bought.
        winners: Vec<ElementId>,
        /// Workers the batch's schedule assigned, in assignment order.
        workers: Vec<WorkerId>,
        /// The platform's cumulative judgment tally after the batch.
        counts: ComparisonCounts,
        /// Money spent after the batch, in the ledger's units.
        spent: f64,
        /// The fault plan's SplitMix64 stream position after the batch:
        /// the attempt index the next judgment fate will be drawn at.
        fault_seq: u64,
        /// True when the batch errored mid-way and `winners` is a prefix.
        partial: bool,
    },
}

/// When `Completed` records are made durable. `Scheduled` records ignore
/// the cadence: the WAL invariant flushes them unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Flush after this many completed batches (minimum 1).
    pub every_batches: u64,
}

impl CheckpointPolicy {
    /// Checkpoint after every completed batch — maximum durability, one
    /// flush per batch.
    pub fn every_batch() -> Self {
        CheckpointPolicy { every_batches: 1 }
    }

    /// Checkpoint after every `n` completed batches (`n` is clamped to at
    /// least 1). Larger `n` amortizes flushes; a crash can lose up to
    /// `n - 1` completed batches (they are then re-bought on resume).
    pub fn every(n: u64) -> Self {
        CheckpointPolicy {
            every_batches: n.max(1),
        }
    }
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy::every_batch()
    }
}

/// The outcome of decoding journal bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedJournal {
    /// The records that decoded cleanly, in order.
    pub records: Vec<JournalRecord>,
    /// Bytes consumed by those records — the recovery point.
    pub valid_bytes: usize,
    /// True when trailing bytes after the last clean record failed the
    /// frame or checksum check (a torn tail from a crash mid-write).
    pub torn_tail: bool,
}

/// An append-only journal with an explicit durability line.
///
/// The in-memory stand-in for an fsync'd file: [`append`](Journal::append)
/// buffers a record, [`flush`](Journal::flush) moves the buffer across the
/// durability line, and a crash (see [`crate::chaos`]) discards whatever
/// was still pending — or, for a torn write, half a frame.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    durable: Vec<u8>,
    pending: Vec<u8>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Encodes `record` into the pending buffer. Not durable until
    /// [`flush`](Journal::flush).
    ///
    /// # Panics
    ///
    /// Panics if the record fails to serialize (it cannot: records are
    /// plain value trees).
    pub fn append(&mut self, record: &JournalRecord) {
        let json = serde_json::to_string(record).expect("journal record serializes");
        self.append_json(&json);
    }

    /// Encodes an arbitrary pre-serialized JSON record into the pending
    /// buffer using the same `<len> <checksum> <json>\n` framing. This is
    /// the extension seam other record vocabularies (the service journal
    /// in [`crate::serve`]) share so every journal in the workspace has
    /// one torn-tail story.
    pub fn append_json(&mut self, json: &str) {
        let frame = format!("{} {:016x} {json}\n", json.len(), fnv1a64(json.as_bytes()));
        self.pending.extend_from_slice(frame.as_bytes());
    }

    /// Moves every pending byte across the durability line. Returns the
    /// bytes flushed (0 when nothing was pending).
    pub fn flush(&mut self) -> u64 {
        let n = self.pending.len() as u64;
        self.durable.append(&mut self.pending);
        n
    }

    /// Simulates a crash mid-write: only the first `keep` pending bytes
    /// reach durable storage, the rest are lost with the process. The
    /// durable journal now ends in a torn frame that decoding must detect
    /// via its length prefix and checksum.
    pub fn flush_torn(&mut self, keep: usize) -> u64 {
        let keep = keep.min(self.pending.len());
        self.durable.extend_from_slice(&self.pending[..keep]);
        self.pending.clear();
        keep as u64
    }

    /// The bytes that would survive a crash right now.
    pub fn durable(&self) -> &[u8] {
        &self.durable
    }

    /// Bytes appended but not yet flushed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Decodes journal bytes frame by frame, stopping at the first torn
    /// or corrupt frame. Never fails: a journal is readable up to its
    /// last intact record by construction.
    pub fn decode(bytes: &[u8]) -> DecodedJournal {
        let raw = Journal::decode_json(bytes);
        let mut records = Vec::new();
        let mut valid_bytes = 0usize;
        let mut torn_tail = raw.torn_tail;
        for (json, len) in raw.frames {
            match serde_json::from_str(&json) {
                Ok(record) => {
                    records.push(record);
                    valid_bytes += len;
                }
                Err(_) => {
                    // Intact frame, wrong vocabulary: unreadable from here.
                    torn_tail = true;
                    break;
                }
            }
        }
        DecodedJournal {
            records,
            valid_bytes,
            torn_tail,
        }
    }

    /// Decodes journal bytes into raw JSON payloads, stopping at the first
    /// torn or corrupt frame, without committing to a record vocabulary.
    /// Shared by every journal reader in the workspace.
    pub fn decode_json(bytes: &[u8]) -> DecodedFrames {
        let mut frames = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let Some(frame) = decode_raw_frame(&bytes[pos..]) else {
                return DecodedFrames {
                    frames,
                    valid_bytes: pos,
                    torn_tail: true,
                };
            };
            pos += frame.1;
            frames.push(frame);
        }
        DecodedFrames {
            frames,
            valid_bytes: pos,
            torn_tail: false,
        }
    }
}

/// Raw frames decoded from journal bytes: `(json payload, encoded frame
/// length)` pairs plus the same torn-tail verdict [`DecodedJournal`]
/// carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedFrames {
    /// The intact frames, in order: JSON payload and total encoded length.
    pub frames: Vec<(String, usize)>,
    /// Bytes consumed by the intact frames.
    pub valid_bytes: usize,
    /// True when trailing bytes failed the frame or checksum check.
    pub torn_tail: bool,
}

/// Decodes one `<len> <checksum> <json>\n` frame from the front of
/// `bytes` into `(json, total frame length)`, or `None` when the frame is
/// truncated or corrupt.
fn decode_raw_frame(bytes: &[u8]) -> Option<(String, usize)> {
    let sp1 = bytes.iter().position(|&b| b == b' ')?;
    let len: usize = std::str::from_utf8(&bytes[..sp1]).ok()?.parse().ok()?;
    let sum_start = sp1 + 1;
    let sum_end = sum_start.checked_add(16)?;
    if bytes.len() <= sum_end || bytes[sum_end] != b' ' {
        return None;
    }
    let sum =
        u64::from_str_radix(std::str::from_utf8(&bytes[sum_start..sum_end]).ok()?, 16).ok()?;
    let json_start = sum_end + 1;
    let json_end = json_start.checked_add(len)?;
    if bytes.len() <= json_end || bytes[json_end] != b'\n' {
        return None;
    }
    let json = &bytes[json_start..json_end];
    if fnv1a64(json) != sum {
        return None;
    }
    Some((std::str::from_utf8(json).ok()?.to_string(), json_end + 1))
}

/// A [`PlatformOracle`] decorator that write-ahead journals every batch.
///
/// Per batch: the `Scheduled` record is appended and *flushed* before any
/// worker is asked (so a crash can leave at most one batch in flight),
/// the batch runs on the wrapped platform, and the `Completed` record —
/// winners, worker assignments, cumulative tally, spend, and the fault
/// plan's SplitMix64 position — is appended and flushed at the
/// [`CheckpointPolicy`] cadence. Each checkpoint emits
/// [`Event::CheckpointWritten`] and bumps the
/// [`crowd_journal_bytes_total`](metric_names::JOURNAL_BYTES) counter.
///
/// An optional [`ChaosPlan`] deterministically kills the run at a seeded
/// injection point: the oracle reports [`OracleError::Interrupted`], and
/// every later call short-circuits to the same error — a crashed journal
/// stays frozen exactly at the crash point. [`mod@crate::recover`] turns the
/// durable bytes back into a running job.
#[derive(Debug)]
pub struct JournaledOracle<R: RngCore> {
    inner: PlatformOracle<R>,
    journal: Journal,
    policy: CheckpointPolicy,
    chaos: Option<ChaosPlan>,
    next_batch: u64,
    unflushed_completed: u64,
    crashed: bool,
}

impl<R: RngCore> JournaledOracle<R> {
    /// Wraps `platform`, journaling under the given job label and
    /// checkpoint cadence. The `Started` header is flushed immediately.
    pub fn new(platform: Platform<R>, job: &str, seed: u64, policy: CheckpointPolicy) -> Self {
        let mut journal = Journal::new();
        journal.append(&JournalRecord::Started {
            version: JOURNAL_VERSION,
            job: job.to_string(),
            seed,
        });
        journal.flush();
        JournaledOracle {
            inner: PlatformOracle::new(platform),
            journal,
            policy,
            chaos: None,
            next_batch: 0,
            unflushed_completed: 0,
            crashed: false,
        }
    }

    /// Arms a deterministic crash plan. See [`crate::chaos`].
    pub fn with_chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// The journal (its [`durable`](Journal::durable) bytes are what a
    /// crash leaves behind).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The wrapped platform.
    pub fn platform(&self) -> &Platform<R> {
        self.inner.platform()
    }

    /// True once a chaos crash has fired; every oracle call now reports
    /// [`OracleError::Interrupted`].
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Batches journaled so far.
    pub fn batches(&self) -> u64 {
        self.next_batch
    }

    /// Flushes any pending `Completed` records (an orderly shutdown —
    /// call when the driving algorithm finishes). Returns bytes flushed.
    pub fn finish(&mut self) -> u64 {
        let bytes = self.journal.flush();
        if bytes > 0 {
            self.checkpoint_written(bytes);
        }
        self.unflushed_completed = 0;
        bytes
    }

    /// Consumes the decorator, returning the journal and the platform.
    pub fn into_parts(self) -> (Journal, Platform<R>) {
        (self.journal, self.inner.into_platform())
    }

    fn checkpoint_written(&self, bytes: u64) {
        crowd_obs::emit(Event::CheckpointWritten {
            batches: self.next_batch,
            bytes,
        });
        crowd_obs::counter_add(metric_names::JOURNAL_BYTES, &[], bytes);
    }

    fn crash(&mut self) -> OracleError {
        self.crashed = true;
        OracleError::Interrupted
    }
}

impl<R: RngCore> ComparisonOracle for JournaledOracle<R> {
    /// Infallible trait surface. Callers that must not panic on a
    /// fault-exhausted platform use [`Self::try_compare`], which returns
    /// the typed [`OracleError`] instead.
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        self.try_compare(class, k, j)
            .expect("the journaled platform cannot answer")
    }

    fn try_compare(
        &mut self,
        class: WorkerClass,
        k: ElementId,
        j: ElementId,
    ) -> Result<ElementId, OracleError> {
        let mut winners = Vec::with_capacity(1);
        self.try_compare_batch(class, &[(k, j)], &mut winners)?;
        Ok(winners[0])
    }

    fn compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) {
        self.try_compare_batch(class, pairs, winners)
            .expect("the journaled platform cannot answer");
    }

    /// The WAL hot path. On a chaos crash nothing is executed: the run is
    /// dead, the durable journal is the recovery state, and the completed
    /// prefix of earlier batches is already behind the durability line.
    fn try_compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) -> Result<(), OracleError> {
        if self.crashed {
            return Err(OracleError::Interrupted);
        }
        if pairs.is_empty() {
            return Ok(());
        }
        if self.chaos.as_mut().is_some_and(|c| c.fires_armed()) {
            // A boundary-armed crash (between rounds, at the phase
            // transition) dies before this batch writes anything: any
            // Completed records still pending under a lazy checkpoint
            // cadence are lost with the process and re-bought on resume.
            return Err(self.crash());
        }
        let batch = self.next_batch;
        self.next_batch += 1;
        let scheduled = JournalRecord::Scheduled {
            batch,
            class,
            pairs: pairs.to_vec(),
        };
        if self
            .chaos
            .as_mut()
            .is_some_and(|c| c.tears_journal_at(batch))
        {
            // Crash mid-journal-write: half the Scheduled frame reaches
            // durable storage. Decoding must detect and drop the torn
            // tail; the batch never ran, so nothing is lost but the
            // frame itself.
            self.journal.append(&scheduled);
            let torn = self.journal.pending_len() / 2;
            self.journal.flush_torn(torn);
            return Err(self.crash());
        }
        self.journal.append(&scheduled);
        let bytes = self.journal.flush();
        self.checkpoint_written(bytes);
        self.unflushed_completed = 0;
        if self.chaos.as_mut().is_some_and(|c| c.crashes_at(batch)) {
            // Crash mid-batch: the Scheduled record is durable (the WAL
            // write happened) but no worker was asked — recovery finds
            // the dangling record and runs the batch live.
            return Err(self.crash());
        }
        let start = winners.len();
        let outcome = self.inner.try_compare_batch(class, pairs, winners);
        let partial = outcome.is_err();
        self.journal.append(&JournalRecord::Completed {
            batch,
            winners: winners[start..].to_vec(),
            workers: self.inner.platform().last_assignments().to_vec(),
            counts: self.inner.counts(),
            spent: self.inner.platform().ledger().total(),
            fault_seq: self.inner.platform().fault_seq(),
            partial,
        });
        self.unflushed_completed += 1;
        if partial || self.unflushed_completed >= self.policy.every_batches {
            let bytes = self.journal.flush();
            self.checkpoint_written(bytes);
            self.unflushed_completed = 0;
        }
        outcome
    }

    fn counts(&self) -> ComparisonCounts {
        self.inner.counts()
    }

    fn observe(&mut self, event: crowd_core::trace::TraceEvent) {
        if let Some(chaos) = self.chaos.as_mut() {
            chaos.on_trace(event);
        }
        self.inner.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformConfig;
    use crate::pool::WorkerPool;
    use crowd_core::element::Instance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Started {
                version: JOURNAL_VERSION,
                job: "demo".to_string(),
                seed: 7,
            },
            JournalRecord::Scheduled {
                batch: 0,
                class: WorkerClass::Naive,
                pairs: vec![(ElementId(0), ElementId(1)), (ElementId(2), ElementId(3))],
            },
            JournalRecord::Completed {
                batch: 0,
                winners: vec![ElementId(1), ElementId(2)],
                workers: vec![WorkerId(4), WorkerId(9)],
                counts: ComparisonCounts {
                    naive: 2,
                    expert: 0,
                },
                spent: 0.2,
                fault_seq: 2,
                partial: false,
            },
        ]
    }

    #[test]
    fn frames_round_trip() {
        let mut journal = Journal::new();
        for r in &sample_records() {
            journal.append(r);
        }
        journal.flush();
        let decoded = Journal::decode(journal.durable());
        assert_eq!(decoded.records, sample_records());
        assert_eq!(decoded.valid_bytes, journal.durable().len());
        assert!(!decoded.torn_tail);
    }

    #[test]
    fn unflushed_records_do_not_survive() {
        let mut journal = Journal::new();
        journal.append(&sample_records()[0]);
        journal.flush();
        journal.append(&sample_records()[1]);
        // No flush: the second record dies with the process.
        let decoded = Journal::decode(journal.durable());
        assert_eq!(decoded.records.len(), 1);
        assert!(!decoded.torn_tail, "a missing record is not a torn one");
    }

    #[test]
    fn torn_tail_is_detected_and_dropped() {
        let mut journal = Journal::new();
        journal.append(&sample_records()[0]);
        let clean = journal.flush();
        journal.append(&sample_records()[1]);
        journal.flush_torn(journal.pending_len() / 2);
        let decoded = Journal::decode(journal.durable());
        assert_eq!(decoded.records.len(), 1, "the torn frame must not parse");
        assert_eq!(decoded.valid_bytes as u64, clean);
        assert!(decoded.torn_tail);
    }

    #[test]
    fn corrupt_byte_fails_the_checksum() {
        let mut journal = Journal::new();
        for r in &sample_records() {
            journal.append(r);
        }
        journal.flush();
        let mut bytes = journal.durable().to_vec();
        // Flip one byte inside the last frame's JSON payload.
        let n = bytes.len();
        bytes[n - 3] ^= 0x01;
        let decoded = Journal::decode(&bytes);
        assert_eq!(decoded.records.len(), sample_records().len() - 1);
        assert!(decoded.torn_tail);
    }

    #[test]
    fn journaled_oracle_writes_ahead() {
        let instance = Instance::new(vec![1.0, 2.0, 3.0, 4.0]);
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(5, 0.0, 0.0);
        let platform = Platform::new(
            instance,
            pool,
            PlatformConfig::paper_default().without_gold(),
            StdRng::seed_from_u64(3),
        );
        let mut oracle = JournaledOracle::new(platform, "wal", 3, CheckpointPolicy::every(64));
        let mut winners = Vec::new();
        oracle
            .try_compare_batch(
                WorkerClass::Naive,
                &[(ElementId(0), ElementId(3))],
                &mut winners,
            )
            .unwrap();
        assert_eq!(winners, vec![ElementId(3)]);
        // The lazy checkpoint cadence keeps Completed pending, but the
        // Scheduled record is already durable: WAL.
        let decoded = Journal::decode(oracle.journal().durable());
        assert!(matches!(
            decoded.records.last(),
            Some(JournalRecord::Scheduled { batch: 0, .. })
        ));
        oracle.finish();
        let decoded = Journal::decode(oracle.journal().durable());
        assert!(matches!(
            decoded.records.last(),
            Some(JournalRecord::Completed {
                batch: 0,
                partial: false,
                ..
            })
        ));
    }

    #[test]
    fn checkpoint_cadence_batches_completed_flushes() {
        let instance = Instance::new(vec![1.0, 2.0, 3.0, 4.0]);
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(5, 0.0, 0.0);
        let platform = Platform::new(
            instance,
            pool,
            PlatformConfig::paper_default().without_gold(),
            StdRng::seed_from_u64(3),
        );
        let mut oracle = JournaledOracle::new(platform, "cadence", 3, CheckpointPolicy::every(2));
        let mut winners = Vec::new();
        for _ in 0..2 {
            oracle
                .try_compare_batch(
                    WorkerClass::Naive,
                    &[(ElementId(0), ElementId(3))],
                    &mut winners,
                )
                .unwrap();
        }
        // At cadence 2, batch 0's Completed rode along with batch 1's
        // write-ahead Scheduled flush (the journal is one append-only
        // stream), while batch 1's own Completed is still pending — the
        // crash window a lazy cadence accepts.
        let completed = |bytes: &[u8]| {
            Journal::decode(bytes)
                .records
                .iter()
                .filter(|r| matches!(r, JournalRecord::Completed { .. }))
                .count()
        };
        assert_eq!(completed(oracle.journal().durable()), 1);
        assert!(oracle.journal().pending_len() > 0);
        oracle.finish();
        assert_eq!(completed(oracle.journal().durable()), 2);
    }
}
